// Isolation harness: seeded noisy-neighbor trials on a vNPU-sliced core. An
// IsolationScenario pins a well-behaved victim tenant into slice 0 and a
// pack of aggressors — HBM flooders, vector-memory hogs, or an MMPP flash
// crowd — into the sibling slice, then asserts the spatial-partitioning
// contract:
//
//   - containment: the victim's p99 latency with the noisy neighbor next
//     door stays within a constant factor (plus window-granularity slack)
//     of its latency running alone on the same slice;
//   - conservation: replaying the EvSliceHBM event stream, each slice's
//     cumulative granted bytes never exceed vnpu.WindowBound, per-slice
//     vector-memory high-water marks stay under their hard ceilings, and
//     the slice ceilings sum to at most the device's vector memory;
//   - consistency: the event stream and the SliceStats counters tell one
//     story (bytes and throttle stalls match up to the documented
//     in-flight slack);
//   - determinism: the same seed reproduces the noisy run bit for bit.
package simcheck

import (
	"fmt"

	"v10/internal/fleet"
	"v10/internal/mathx"
	"v10/internal/npu"
	"v10/internal/obs"
	"v10/internal/vnpu"
	"v10/internal/workload"
)

// IsolationBound is the containment factor: with slicing on, a noisy
// neighbor in the sibling slice may not stretch the victim's p99 beyond
// this multiple of its victim-alone p99 (plus IsolationSlack windows of
// token-bucket granularity). The residual coupling it allows for is the
// fluid HBM model's proportional sharing and engine-level event
// interleaving, both bounded; without enforced slicing the flood aggressors
// push the victim one to two orders of magnitude past it.
const IsolationBound = 2.0

// IsolationSlack scales the additive slack term: SlackCycles = IsolationSlack
// × (WindowCycles + TimeSlice) absorbs quantization when the victim-alone p99
// is small against the token-bucket window.
const IsolationSlack = 4

// AggressorKinds lists the noisy-neighbor archetypes GenIsolationScenario
// rotates through (seed mod 3 picks one, so any contiguous seed sweep covers
// all three).
var AggressorKinds = []string{"hbm-flood", "vmem-hog", "flash-crowd"}

// IsolationScenario is one self-contained noisy-neighbor trial on a sliced
// core. It serializes to JSON so a failing seed replays from a repro file.
// Workloads[0] is the victim (pinned to slice 0); every other workload is an
// aggressor (pinned to slice 1). Arrivals[i] is workload i's explicit
// arrival schedule.
type IsolationScenario struct {
	Seed           uint64          `json:"seed"`
	Config         npu.CoreConfig  `json:"config"`
	Scheme         string          `json:"scheme"`
	Aggressor      string          `json:"aggressor"`
	Templates      []vnpu.Template `json:"templates"`
	WindowCycles   int64           `json:"window_cycles"`
	DurationCycles int64           `json:"duration_cycles"`
	QueueLimit     int             `json:"queue_limit"`
	Workloads      []WorkloadSpec  `json:"workloads"`
	Arrivals       [][]int64       `json:"arrivals"`
	Bound          float64         `json:"bound"`
	SlackCycles    int64           `json:"slack_cycles"`
}

// IsolationViolation is a failed isolation trial: the scenario plus every
// oracle message, JSON-serializable for replay.
type IsolationViolation struct {
	Scenario *IsolationScenario `json:"scenario"`
	Problems []string           `json:"problems"`
}

// Error implements error.
func (v *IsolationViolation) Error() string {
	return fmt.Sprintf("simcheck: isolation seed %d (%s): %d problem(s), first: %s",
		v.Scenario.Seed, v.Scenario.Aggressor, len(v.Problems), v.Problems[0])
}

// GenIsolationScenario derives a complete noisy-neighbor trial from one
// seed: slice split, token-bucket window, an SA-bound victim, and one to two
// aggressors of the seed's archetype with arrival schedules hot enough to
// saturate their slice. Same seed, same scenario.
func GenIsolationScenario(seed uint64) *IsolationScenario {
	rng := mathx.NewRNG(seed + 0x150a71)
	cfg := npu.DefaultConfig()
	cfg.TimeSlice = pick64(rng, 8192, 32768)

	kind := AggressorKinds[seed%uint64(len(AggressorKinds))]
	victimFrac := pickF(rng, 0.5, 0.75)
	aggFrac := 1 - victimFrac
	window := pick64(rng, 16384, 65536)

	is := &IsolationScenario{
		Seed:      seed,
		Config:    cfg,
		Scheme:    pickScheme(rng),
		Aggressor: kind,
		Templates: []vnpu.Template{
			{Name: "victim", Compute: victimFrac, VMem: victimFrac, HBM: victimFrac},
			{Name: "noisy", Compute: aggFrac, VMem: aggFrac, HBM: aggFrac},
		},
		WindowCycles:   window,
		DurationCycles: pick64(rng, 1_000_000, 2_000_000),
		QueueLimit:     32,
		Bound:          IsolationBound,
		SlackCycles:    IsolationSlack * (window + cfg.TimeSlice),
	}

	// Victim: a systolic-array-bound chain with moderate HBM traffic — the
	// tenant whose tail latency the slicing contract protects.
	nv := 3 + rng.Intn(3)
	vops := make([]OpSpec, nv)
	for i := range vops {
		c := 500 + int64(rng.Intn(3000))
		vops[i] = OpSpec{
			Kind:      "SA",
			Compute:   c,
			Stall:     int64(rng.Intn(200)),
			HBMBytes:  float64(c) * rng.Uniform(20, 80),
			VMemBytes: int64(rng.Intn(32 << 10)),
		}
	}
	is.Workloads = append(is.Workloads, WorkloadSpec{Name: "victim", Priority: 1, Ops: vops})

	// Aggressors: one or two tenants of the archetype, sized against their
	// slice's vector-memory share.
	na := 1 + rng.Intn(2)
	aggPart := int64(float64(cfg.VMemBytes)*aggFrac) / int64(na)
	for a := 0; a < na; a++ {
		n := 2 + rng.Intn(3)
		ops := make([]OpSpec, n)
		for i := range ops {
			op := OpSpec{Kind: "VU", Compute: 1000 + int64(rng.Intn(3000))}
			if rng.Float64() < 0.5 {
				op.Kind = "SA"
			}
			switch kind {
			case "hbm-flood":
				// Demand far above even the whole device's bandwidth: the
				// slice's token bucket must throttle nearly every window.
				op.HBMBytes = float64(op.Compute) * rng.Uniform(1000, 3000)
				op.VMemBytes = int64(rng.Intn(32 << 10))
			case "vmem-hog":
				// Footprints several times the slice partition force deep
				// tiling and context-capacity rejections at the ceiling.
				op.HBMBytes = float64(op.Compute) * rng.Uniform(100, 400)
				op.VMemBytes = int64(float64(aggPart) * rng.Uniform(2, 8))
			default: // flash-crowd: ordinary ops, bursty arrivals
				op.HBMBytes = float64(op.Compute) * rng.Uniform(50, 200)
				op.VMemBytes = int64(rng.Intn(64 << 10))
			}
			ops[i] = op
		}
		is.Workloads = append(is.Workloads,
			WorkloadSpec{Name: fmt.Sprintf("%s%d", kind, a), Priority: 1, Ops: ops})
	}

	// Arrival schedules: the victim trickles at ~25% of its sliced-service
	// capacity; aggressors offer up to several times theirs. Flash crowds
	// arrive as MMPP bursts, everything else as Poisson.
	sc := &Scenario{Config: cfg, Workloads: is.Workloads}
	eng := workload.Engine{Config: cfg, HorizonCycles: is.DurationCycles, Seed: seed}
	is.Arrivals = make([][]int64, len(is.Workloads))
	for i := range is.Workloads {
		frac, util := victimFrac, 0.25
		spec := workload.Spec{Process: workload.Poisson}
		if i > 0 {
			frac = aggFrac
			util = pickF(rng, 0.8, 1.5, 3.0) / float64(na)
			if kind == "flash-crowd" {
				spec.Process = workload.MMPP
			}
		}
		serve := serveCycles(sc, i) / frac
		if serve < 1 {
			serve = 1
		}
		spec.RateHz = util * cfg.FrequencyHz / serve
		arr, err := eng.Schedule(i, spec)
		if err != nil {
			panic(fmt.Sprintf("simcheck: isolation generator produced invalid spec: %v", err))
		}
		is.Arrivals[i] = arr
	}
	if len(is.Arrivals[0]) == 0 {
		is.Arrivals[0] = []int64{0} // the containment oracle needs a victim request
	}
	return is
}

// options maps the scenario onto fleet.Options for its first n tenants:
// one core, pinned placement, victim in slice 0, aggressors in slice 1.
func (is *IsolationScenario) options(n int) fleet.Options {
	home := make([]int, n)
	slices := make([]int, n)
	for i := range home {
		home[i] = i
		if i > 0 {
			slices[i] = 1
		}
	}
	return fleet.Options{
		Config:            is.Config,
		Cores:             1,
		Scheme:            is.Scheme,
		Policy:            fleet.PolicyLeastLoaded,
		Arrivals:          is.Arrivals[:n],
		DurationCycles:    is.DurationCycles,
		QueueLimit:        is.QueueLimit,
		NoSpill:           true,
		Seed:              is.Seed,
		Parallel:          1, // serial inside one trial; v10check parallelizes across trials
		VNPUTemplates:     is.Templates,
		SliceWindowCycles: is.WindowCycles,
		PinnedPlacement:   [][]int{home},
		PinnedSlices:      slices,
	}
}

// CheckIsolationScenario runs the trial and returns every oracle violation.
func CheckIsolationScenario(is *IsolationScenario) []string {
	return checkIsolation(is, nil, nil)
}

// filterTracer forwards events through fn, letting the mutation acceptance
// tests corrupt or drop them between the runner and the oracles.
type filterTracer struct {
	next obs.Tracer
	fn   func(obs.Event) (obs.Event, bool)
}

// Emit implements obs.Tracer.
func (f *filterTracer) Emit(e obs.Event) {
	if e2, keep := f.fn(e); keep {
		f.next.Emit(e2)
	}
}

// checkIsolation is CheckIsolationScenario with mutation hooks: mutate may
// corrupt or drop events between the runner and the oracles, mutateRes may
// corrupt the noisy run's result. The mutation acceptance tests use the
// hooks to prove injected enforcement bugs are caught; when either hook is
// set the determinism oracle is skipped (a corrupted view trivially differs
// from its clean re-run).
func checkIsolation(is *IsolationScenario,
	mutate func(obs.Event) (obs.Event, bool), mutateRes func(*fleet.Result)) (problems []string) {
	defer func() {
		if r := recover(); r != nil {
			problems = append(problems, fmt.Sprintf("panic: %v", r))
		}
	}()
	sc := &Scenario{Config: is.Config, Workloads: is.Workloads}

	// Arm 1: the victim alone on its slice — the containment baseline.
	aloneRes, err := fleet.Run(sc.BuildWorkloads()[:1], is.options(1))
	if err != nil {
		return append(problems, fmt.Sprintf("victim-alone run error: %v", err))
	}

	// Arm 2: victim plus aggressors, event log attached.
	coreLog := &obs.Log{}
	o := is.options(len(is.Workloads))
	o.CoreTracer = func(core int, tenants []int) obs.Tracer {
		if mutate != nil {
			return &filterTracer{next: coreLog, fn: mutate}
		}
		return coreLog
	}
	noisyRes, err := fleet.Run(sc.BuildWorkloads(), o)
	if err != nil {
		return append(problems, fmt.Sprintf("noisy run error: %v", err))
	}

	// Arm 3: determinism — the same seed must reproduce the noisy run bit
	// for bit, slice accounting included (the tracer may not perturb it).
	if mutate == nil && mutateRes == nil {
		rerun, err2 := fleet.Run(sc.BuildWorkloads(), is.options(len(is.Workloads)))
		if err2 != nil {
			problems = append(problems, fmt.Sprintf("noisy re-run error: %v", err2))
		} else if !sameResult(noisyRes, rerun) {
			problems = append(problems, "noisy run is not deterministic: re-run with the same seed differs")
		}
	}
	if mutateRes != nil {
		mutateRes(noisyRes)
	}

	problems = append(problems, checkVictimContainment(is, aloneRes, noisyRes)...)
	problems = append(problems, checkSliceConservation(is, noisyRes, coreLog.Events)...)
	return problems
}

// checkVictimContainment asserts the headline isolation property: slicing
// bounds how much the noisy neighbor can stretch the victim's tail.
func checkVictimContainment(is *IsolationScenario, alone, noisy *fleet.Result) (problems []string) {
	va, vn := alone.Tenants[0], noisy.Tenants[0]
	if va.Completed == 0 {
		return append(problems, "victim-alone run served no victim requests")
	}
	if vn.Completed == 0 {
		return append(problems, "noisy run served no victim requests")
	}
	limit := is.Bound*va.P99LatencyCycles + float64(is.SlackCycles)
	if vn.P99LatencyCycles > limit {
		problems = append(problems, fmt.Sprintf(
			"victim p99 %0.f with %s neighbor exceeds %0.f (= %.1f × alone p99 %0.f + %d slack)",
			vn.P99LatencyCycles, is.Aggressor, limit, is.Bound, va.P99LatencyCycles, is.SlackCycles))
	}
	return problems
}

// checkSliceConservation replays the slice event stream against the noisy
// run's SliceStats and the token-bucket conservation law.
func checkSliceConservation(is *IsolationScenario, res *fleet.Result, events []obs.Event) (problems []string) {
	failf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	cr := res.Cores[0]
	if cr.Run == nil {
		return append(problems, "noisy run left core 0 idle")
	}
	nSlices := len(is.Templates)
	if len(cr.Slices) != nSlices {
		return append(problems, fmt.Sprintf("core 0 reports %d slice stats, want %d", len(cr.Slices), nSlices))
	}

	// Hard ceilings: per-slice vmem under its cap, caps summing to at most
	// the device's vector memory.
	var vmemTotal int64
	for i, ss := range cr.Slices {
		if ss.VMemUsedBytes > ss.VMemBytes {
			failf("slice %d vmem high-water %d exceeds its ceiling %d", i, ss.VMemUsedBytes, ss.VMemBytes)
		}
		vmemTotal += ss.VMemBytes
	}
	if vmemTotal > is.Config.VMemBytes {
		failf("slice vmem ceilings sum to %d, device has %d", vmemTotal, is.Config.VMemBytes)
	}

	// Event replay: cumulative granted bytes per slice may never exceed the
	// window-quota bound, at the grant cycle or in total.
	evBytes := make([]float64, nSlices)
	evThrottles := make([]int64, nSlices)
	for _, e := range events {
		switch e.Type {
		case obs.EvSliceHBM:
			s := int(e.Arg0)
			if s < 0 || s >= nSlices {
				failf("slice-hbm event names slice %d of %d", s, nSlices)
				continue
			}
			if e.Arg1 <= 0 {
				failf("slice-hbm event carries non-positive bytes %v", e.Arg1)
			}
			evBytes[s] += e.Arg1
			ss := cr.Slices[s]
			if bound := vnpu.WindowBound(ss.WindowCycles, ss.QuotaBytes, e.Time, ss.Residents); evBytes[s] > bound*(1+1e-9) {
				failf("slice %d granted %0.f bytes by cycle %d, conservation bound is %0.f",
					s, evBytes[s], e.Time, bound)
			}
		case obs.EvSliceThrottle:
			s := int(e.Arg0)
			if s < 0 || s >= nSlices {
				failf("slice-throttle event names slice %d of %d", s, nSlices)
				continue
			}
			if e.Dur <= 0 {
				failf("slice-throttle span has non-positive duration %d", e.Dur)
			}
			evThrottles[s]++
		}
	}

	// Consistency: the stats counters may lead the event stream by at most
	// the in-flight slack — the closed loop charges the next operator before
	// the run's done-predicate fires, and a charge granted past run end
	// never emits its event — but never the other way around.
	for s, ss := range cr.Slices {
		if bound := vnpu.WindowBound(ss.WindowCycles, ss.QuotaBytes, cr.Run.TotalCycles, ss.Residents); ss.HBMBytes > bound*(1+1e-9) {
			failf("slice %d stats report %0.f HBM bytes over %d cycles, conservation bound is %0.f",
				s, ss.HBMBytes, cr.Run.TotalCycles, bound)
		}
		slack := inflightSlack(is, s)
		if evBytes[s] > ss.HBMBytes*(1+1e-9) {
			failf("slice %d events grant %0.f bytes but stats charged only %0.f",
				s, evBytes[s], ss.HBMBytes)
		}
		if gap := ss.HBMBytes - evBytes[s]; gap > slack {
			failf("slice %d stats lead events by %0.f bytes, in-flight slack allows %0.f",
				s, gap, slack)
		}
		if evThrottles[s] > ss.ThrottleStalls {
			failf("slice %d has %d throttle spans but stats count %d stalls",
				s, evThrottles[s], ss.ThrottleStalls)
		}
		if gap := ss.ThrottleStalls - evThrottles[s]; gap > int64(ss.Residents) {
			failf("slice %d stats count %d stalls but only %d spans were emitted (slack %d)",
				s, ss.ThrottleStalls, evThrottles[s], ss.Residents)
		}
	}
	return problems
}

// inflightSlack bounds how far a slice's charged-bytes counter may lead its
// event stream: each resident serves operators sequentially, so at most one
// charge per resident is in flight (charged but not yet granted, or granted
// past run end), each at most one operator's bytes. Tiling can reshape an
// operator's traffic, so the per-op term is doubled to cover reload bytes.
func inflightSlack(is *IsolationScenario, slice int) float64 {
	var maxOp float64
	for i, w := range is.Workloads {
		ws := 0
		if i > 0 {
			ws = 1
		}
		if ws != slice {
			continue
		}
		for _, op := range w.Ops {
			if op.HBMBytes > maxOp {
				maxOp = op.HBMBytes
			}
		}
	}
	residents := 0
	for i := range is.Workloads {
		if (i > 0) == (slice == 1) {
			residents++
		}
	}
	return float64(residents) * (2*maxOp + 1)
}

// RunIsolationTrial generates and checks one noisy-neighbor trial, returning
// nil on pass (v10check -isolation).
func RunIsolationTrial(seed uint64) *IsolationViolation {
	is := GenIsolationScenario(seed)
	if problems := CheckIsolationScenario(is); len(problems) > 0 {
		return &IsolationViolation{Scenario: is, Problems: problems}
	}
	return nil
}
