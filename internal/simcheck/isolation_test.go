package simcheck

import (
	"reflect"
	"testing"

	"v10/internal/fleet"
	"v10/internal/obs"
	"v10/internal/vnpu"
)

// TestIsolationCleanSweep runs a contiguous seed range — covering every
// aggressor archetype — through the full oracle stack: containment,
// conservation, consistency, determinism.
func TestIsolationCleanSweep(t *testing.T) {
	n := uint64(12)
	if testing.Short() {
		n = 3
	}
	for seed := uint64(0); seed < n; seed++ {
		if v := RunIsolationTrial(seed); v != nil {
			t.Errorf("seed %d (%s):\n%s", seed, v.Scenario.Aggressor, join(v.Problems))
		}
	}
}

func TestIsolationScenarioDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		a, b := GenIsolationScenario(seed), GenIsolationScenario(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d generated two different scenarios", seed)
		}
	}
}

func TestIsolationScenarioRotatesAggressors(t *testing.T) {
	seen := map[string]bool{}
	for seed := uint64(0); seed < uint64(len(AggressorKinds)); seed++ {
		seen[GenIsolationScenario(seed).Aggressor] = true
	}
	for _, kind := range AggressorKinds {
		if !seen[kind] {
			t.Errorf("aggressor kind %s never generated in a full rotation", kind)
		}
	}
}

// throttledScenario is a trial whose aggressor slice reliably throttles
// (dozens to hundreds of token-bucket stalls), so every event-stream
// mutation below has material to corrupt. Seed 0 is an HBM flood.
func throttledScenario(t *testing.T) *IsolationScenario {
	t.Helper()
	is := GenIsolationScenario(0)
	if is.Aggressor != "hbm-flood" {
		t.Fatalf("seed 0 generates %s, the mutation fixtures expect hbm-flood", is.Aggressor)
	}
	return is
}

func TestIsolationMutationCleanBaseline(t *testing.T) {
	if p := checkIsolation(throttledScenario(t), nil, nil); len(p) != 0 {
		t.Fatalf("unmutated trial flagged:\n%s", join(p))
	}
}

// TestIsolationMutationLeakedHBMAccounting models a slice-accounting leak —
// charges that bypass the per-slice byte counter's event emission. Dropping
// every second grant event leaves the stats counter leading the event stream
// far beyond the documented in-flight slack.
func TestIsolationMutationLeakedHBMAccounting(t *testing.T) {
	is := throttledScenario(t)
	drop := false
	p := checkIsolation(is, func(e obs.Event) (obs.Event, bool) {
		if e.Type == obs.EvSliceHBM {
			drop = !drop
			return e, !drop
		}
		return e, true
	}, nil)
	if len(p) == 0 {
		t.Fatal("leaked slice-HBM accounting not caught")
	}
}

// TestIsolationMutationQuotaOverrun models a broken token bucket — a window
// that refills more than its quota. Doubling every granted charge pushes the
// replayed cumulative bytes past vnpu.WindowBound (and past what the stats
// counter charged).
func TestIsolationMutationQuotaOverrun(t *testing.T) {
	is := throttledScenario(t)
	p := checkIsolation(is, func(e obs.Event) (obs.Event, bool) {
		if e.Type == obs.EvSliceHBM {
			e.Arg1 *= 2
		}
		return e, true
	}, nil)
	if len(p) == 0 {
		t.Fatal("over-quota slice grants not caught")
	}
}

// TestIsolationMutationStatsOverrun models the same broken bucket on the
// stats side: a slice reporting more charged bytes than the conservation law
// allows over the run's span.
func TestIsolationMutationStatsOverrun(t *testing.T) {
	is := throttledScenario(t)
	p := checkIsolation(is, nil, func(res *fleet.Result) {
		cr := &res.Cores[0]
		ss := &cr.Slices[1]
		ss.HBMBytes = 2 * vnpu.WindowBound(ss.WindowCycles, ss.QuotaBytes, cr.Run.TotalCycles, ss.Residents)
	})
	if len(p) == 0 {
		t.Fatal("over-bound slice byte counter not caught")
	}
}

// TestIsolationMutationDroppedThrottleSpans models a throttle path that
// stalls DMA without tracing it: the stats count stalls the event stream
// never saw.
func TestIsolationMutationDroppedThrottleSpans(t *testing.T) {
	is := throttledScenario(t)
	dropped := 0
	p := checkIsolation(is, func(e obs.Event) (obs.Event, bool) {
		if e.Type == obs.EvSliceThrottle {
			dropped++
			return e, false
		}
		return e, true
	}, nil)
	if dropped == 0 {
		t.Fatal("fixture emitted no throttle spans")
	}
	if len(p) == 0 {
		t.Fatal("dropped throttle spans not caught")
	}
}

// TestIsolationMutationPhantomThrottleCounter is the inverse: a stalls
// counter zeroed while throttle spans exist in the timeline.
func TestIsolationMutationPhantomThrottleCounter(t *testing.T) {
	is := throttledScenario(t)
	p := checkIsolation(is, nil, func(res *fleet.Result) {
		res.Cores[0].Slices[1].ThrottleStalls = 0
	})
	if len(p) == 0 {
		t.Fatal("zeroed throttle-stall counter not caught")
	}
}

// TestIsolationMutationCeilingOffByOne models a vmem allocator that admits
// one byte past the slice's hard ceiling.
func TestIsolationMutationCeilingOffByOne(t *testing.T) {
	is := throttledScenario(t)
	p := checkIsolation(is, nil, func(res *fleet.Result) {
		ss := &res.Cores[0].Slices[0]
		ss.VMemUsedBytes = ss.VMemBytes + 1
	})
	if len(p) == 0 {
		t.Fatal("ceiling off-by-one not caught")
	}
}

// TestIsolationMutationOversubscribedCeilings models a partitioner handing
// out more vector memory than the device has.
func TestIsolationMutationOversubscribedCeilings(t *testing.T) {
	is := throttledScenario(t)
	p := checkIsolation(is, nil, func(res *fleet.Result) {
		for i := range res.Cores[0].Slices {
			res.Cores[0].Slices[i].VMemBytes = is.Config.VMemBytes
		}
	})
	if len(p) == 0 {
		t.Fatal("oversubscribed slice ceilings not caught")
	}
}

// TestIsolationMutationBrokenContainment models enforcement failing
// outright: the victim's noisy-neighbor p99 blown far past the containment
// bound must trip the headline oracle.
func TestIsolationMutationBrokenContainment(t *testing.T) {
	is := throttledScenario(t)
	p := checkIsolation(is, nil, func(res *fleet.Result) {
		res.Tenants[0].P99LatencyCycles *= 100
	})
	if len(p) == 0 {
		t.Fatal("blown victim p99 not caught")
	}
}
