package simcheck

import (
	"fmt"

	"v10/internal/mathx"
	"v10/internal/npu"
	"v10/internal/trace"
)

// maxTrialEvents caps the estimated event count of one generated trial. The
// PREMA worst-case budget can legitimately reach 1e12+ cycles, and with a
// 5000-cycle quantum a closed loop that actually wanders there generates
// billions of rebalance events — a single trial then runs for hours and its
// observation log alone exceeds memory (seed 126 hit 34 GB). Scenarios whose
// cost estimate exceeds the cap are rejected and deterministically resampled;
// the probe over 3000 seeds rejects ~1.5% at this threshold.
const maxTrialEvents = 2e7

// genAttempts bounds the resample loop. At a ~1.5% rejection rate the chance
// of exhausting it is (0.015)^32 ≈ 1e-58; if that ever happens we fall back
// to the cheapest scenario seen, which is still deterministic.
const genAttempts = 32

// GenScenario derives a complete random trial from one seed: hardware shape,
// scheduler knobs, and an arbitrary SA/VU operator mix including degenerate
// shapes (zero-compute ops, zero stalls, out-of-range efficiencies), extreme
// priority skews, HBM-bandwidth starvation, and vector-memory pressure that
// forces tiling and context-capacity rejections. The same seed always yields
// the same scenario.
//
// Scenarios whose estimated simulation cost exceeds maxTrialEvents are
// rejected and regenerated from a deterministically mixed stream. Attempt 0
// draws from exactly NewRNG(seed), so every seed whose scenario was already
// affordable is bit-identical to what it produced before resampling existed;
// resampled scenarios keep Seed = seed so repro-by-seed still works.
func GenScenario(seed uint64) *Scenario {
	var best *Scenario
	bestCost := 0.0
	for attempt := uint64(0); attempt < genAttempts; attempt++ {
		s := genScenario(seed, mathx.NewRNG(seed+attempt*0x9e3779b97f4a7c15))
		c := trialCost(s)
		if c <= maxTrialEvents {
			return s
		}
		if best == nil || c < bestCost {
			best, bestCost = s, c
		}
	}
	return best
}

func genScenario(seed uint64, rng *mathx.RNG) *Scenario {
	cfg := npu.DefaultConfig()
	cfg.SADim = pickInt(rng, 8, 32, 128)
	cfg.NumSA = 1 + rng.Intn(3)
	cfg.NumVU = 1 + rng.Intn(3)
	cfg.TimeSlice = pick64(rng, 256, 1024, 8192, 32768)
	cfg.VMemBytes = pick64(rng, 96<<10, 1<<20, 32<<20)
	cfg.HBMBandwidth = pickF(rng, 330e9, 33e9, 3.3e9)

	s := &Scenario{
		Seed:     seed,
		Config:   cfg,
		Requests: 1 + rng.Intn(3),
	}

	nw := 1 + rng.Intn(4)
	partition := cfg.VMemBytes / int64(nw)
	s.Clones = nw >= 2 && rng.Float64() < 0.35

	var cloneOps []OpSpec
	if s.Clones {
		cloneOps = genOps(rng, partition)
	}
	equalPrio := s.Clones || rng.Float64() < 0.6
	for i := 0; i < nw; i++ {
		w := WorkloadSpec{Name: fmt.Sprintf("W%d", i), Priority: 1}
		if !equalPrio {
			w.Priority = pickF(rng, 0.2, 1, 5)
		}
		if s.Clones {
			w.Ops = append([]OpSpec(nil), cloneOps...)
		} else {
			w.Ops = genOps(rng, partition)
		}
		s.Workloads = append(s.Workloads, w)
	}
	balanceDurations(s)

	if rng.Float64() < 0.3 {
		s.DispatchLatency = pick64(rng, 1, 16, 64, 700)
	}
	if rng.Float64() < 0.3 {
		s.PreemptMargin = pickF(rng, 1.0, 3.0)
	}
	s.VMemReloadFactor = pickF(rng, 0.5, 0.5, 0.25, 1.0, 2.0)
	if rng.Float64() < 0.6 {
		s.PMTQuantum = pick64(rng, 5_000, 50_000, 300_000)
	}
	s.PMTPrema = rng.Float64() < 0.5
	s.PMTWeighted = rng.Float64() < 0.3

	openLoop := rng.Float64() < 0.2
	if openLoop {
		// Target ~30% offered load across the tenant set so queues stay
		// stable: rate = 0.3 × clock / total fluid service cycles per round.
		var totalServe float64
		for i := range s.Workloads {
			totalServe += serveCycles(s, i)
		}
		if totalServe < 1 {
			totalServe = 1
		}
		s.ArrivalRateHz = 0.3 * cfg.FrequencyHz / totalServe
		s.Schemes = []string{SchemeBase, SchemeFair, SchemeFull}
	} else {
		s.Schemes = append([]string(nil), AllSchemes...)
	}
	s.MaxCycles = budget(s)
	return s
}

// genOps draws one workload's operator list. partition is the per-tenant
// vector-memory share, used to push some footprints deep into tiling.
func genOps(rng *mathx.RNG, partition int64) []OpSpec {
	n := 1 + rng.Intn(8)
	ops := make([]OpSpec, n)
	for i := range ops {
		op := OpSpec{Kind: "VU"}
		if rng.Float64() < 0.5 {
			op.Kind = "SA"
		}
		switch r := rng.Float64(); {
		case r < 0.10: // degenerate: zero-compute op
		case r < 0.20:
			op.Compute = 1
		case r < 0.40:
			op.Compute = 1 + int64(rng.Intn(64))
		case r < 0.70:
			op.Compute = 100 + int64(rng.Intn(2000))
		default:
			op.Compute = 2000 + int64(rng.Intn(30000))
		}
		switch r := rng.Float64(); {
		case r < 0.40: // zero stall
		case r < 0.60:
			op.Stall = int64(rng.Intn(64))
		case r < 0.85:
			op.Stall = int64(rng.Intn(2000))
		default:
			op.Stall = int64(rng.Intn(20000))
		}
		switch r := rng.Float64(); {
		case r < 0.5: // zero → Eff() treats as 1
		case r < 0.9:
			op.Efficiency = rng.Uniform(0.3, 1)
		default:
			op.Efficiency = 1.5 // out of range → Eff() clamps to 1
		}
		if op.Compute > 0 {
			switch r := rng.Float64(); {
			case r < 0.3: // no HBM traffic
			case r < 0.8:
				// Demand up to ~capacity: mostly unthrottled.
				op.HBMBytes = float64(op.Compute) * rng.Uniform(0, 400)
			default:
				// Demand far above even the fastest config: throttled.
				op.HBMBytes = float64(op.Compute) * rng.Uniform(400, 4000)
			}
		} else if rng.Float64() < 0.5 {
			op.HBMBytes = rng.Uniform(0, 1e6) // zero-compute op with traffic
		}
		switch r := rng.Float64(); {
		case r < 0.4: // no vmem footprint
		case r < 0.6:
			op.VMemBytes = int64(rng.Intn(64 << 10))
		case r < 0.85:
			op.VMemBytes = int64(float64(partition) * rng.Uniform(0.5, 4))
		default:
			op.VMemBytes = int64(float64(partition) * rng.Uniform(4, 32))
		}
		ops[i] = op
	}
	return ops
}

// balanceDurations keeps per-request durations within 32× of each other by
// padding fast workloads' trailing stall. Without the floor, a microsecond
// workload collocated with a millisecond one over-serves by thousands of
// requests in the closed loop, which only burns trial time without covering
// new behaviour.
func balanceDurations(s *Scenario) {
	var maxSerial int64 = 1
	serials := make([]int64, len(s.Workloads))
	for i, w := range s.Workloads {
		var t int64
		for _, op := range w.Ops {
			t += op.Compute + op.Stall
		}
		serials[i] = t
		maxSerial = mathx.MaxInt64(maxSerial, t)
	}
	// Floor of 1 also rules out all-zero workloads, whose closed loop would
	// chain every request at a single timestamp and never advance the clock.
	floor := mathx.MaxInt64(maxSerial/32, 1)
	for i := range s.Workloads {
		if serials[i] < floor {
			last := len(s.Workloads[i].Ops) - 1
			s.Workloads[i].Ops[last].Stall += floor - serials[i]
		}
	}
}

// serveCycles estimates one request's uncontended service time for workload
// i under the V10 schemes: tiled stalls + dispatch latency + fluid compute.
func serveCycles(s *Scenario, i int) float64 {
	part := s.Config.VMemBytes / int64(len(s.Workloads))
	reload := s.VMemReloadFactor
	if reload == 0 {
		reload = 0.5
	}
	g := trace.TileForVMem(s.Workloads[i].graph(), part, reload)
	capacity := s.Config.HBMBytesPerCycle()
	var t float64
	for _, op := range g.Linearize() {
		t += float64(op.Stall + s.DispatchLatency + fluidCycles(op, capacity))
	}
	return t
}

// budget sizes MaxCycles so that any correct run finishes with a wide margin:
// total serial service, amplified by the worst-case priority skew (a starved
// workload progresses at minPrio/ΣPrio of wall time), preemption overhead per
// time slice, PMT's context-switch-per-quantum overhead, and open-loop
// arrival tails. A correct scheduler never comes close; hitting the budget in
// a generated trial is reported as a livelock violation.
func budget(s *Scenario) int64 {
	var totalServe, prioSum float64
	minPrio, maxPrio := s.Workloads[0].Priority, s.Workloads[0].Priority
	for i, w := range s.Workloads {
		totalServe += serveCycles(s, i) * float64(s.Requests)
		prioSum += w.Priority
		if w.Priority < minPrio {
			minPrio = w.Priority
		}
		if w.Priority > maxPrio {
			maxPrio = w.Priority
		}
	}
	prioFactor := prioSum / minPrio
	cfg := s.Config
	preemptFactor := 1 +
		float64(3*cfg.SADim)/float64(cfg.TimeSlice) +
		float64(cfg.VUPreemptCycles()+1)/float64(cfg.TimeSlice)
	pmtFactor := 1.0
	var pmtOver float64
	if len(s.Workloads) > 1 {
		quantum := s.PMTQuantum
		if quantum <= 0 {
			quantum = 1_400_000
		}
		qMin, qMax := float64(quantum), float64(quantum)
		if s.PMTWeighted {
			n := float64(len(s.Workloads))
			qMin *= minPrio / prioSum * n
			qMax *= maxPrio / prioSum * n
		}
		if qMin < 1 {
			qMin = 1
		}
		pmtFactor = 1 + float64(cfg.PMTContextSwitchCycles(1))/qMin
		// Closed-loop over-serving: every tenant that finishes early keeps
		// burning whole quanta until the slowest one is done, so the makespan
		// is dominated by quantum rotation, not by useful service. Budget a
		// full rotation of maximal slices per request round.
		pmtOver = float64(s.Requests+1) * float64(len(s.Workloads)) *
			(qMax + float64(cfg.PMTContextSwitchCycles(1)))
		if s.PMTPrema {
			// PREMA's SJF tie-break only yields to a starving workload once
			// its tokens leave everyone else below half the maximum, so a
			// low-priority tenant waits O(prioSum/minPrio) whole-core quanta
			// between its slices. With weighted quanta the starving tenant is
			// additionally served in qMin-sized slices while the rotation it
			// waits out runs qMax-sized ones, so its completion scales with
			// (its total service / qMin) token-rebuild rotations. Budget that
			// worst case: it is the baseline's documented coarse-grain
			// unfairness, not a livelock.
			rotation := (4*prioSum/minPrio + 8) *
				(qMax + float64(cfg.PMTContextSwitchCycles(1)))
			maxSlices := 2.0
			for i := range s.Workloads {
				slices := 2*serveCycles(s, i)*float64(s.Requests)/qMin + 4
				if slices > maxSlices {
					maxSlices = slices
				}
			}
			pmtOver += maxSlices * rotation
		}
	}
	over := preemptFactor
	if pmtFactor > over {
		over = pmtFactor
	}
	b := int64((totalServe+1000)*prioFactor*over*6+pmtOver) + 3_000_000
	if s.ArrivalRateHz > 0 {
		gap := cfg.FrequencyHz / s.ArrivalRateHz
		b += int64(40 * float64(s.Requests) * gap)
	}
	return b
}

// trialCost estimates the event count of simulating one scenario across all
// of its schemes, in the same worst-case terms budget uses for MaxCycles. The
// V10 schemes cost the op dispatch/complete churn plus one slice tick per
// TimeSlice across the priority-skewed makespan; PMT is dominated by quantum
// rotation, so its cost is the cycle budget divided by the smallest slice.
// This is a rejection proxy for GenScenario, not a runtime prediction: most
// trials finish far below their budget, and over-rejecting merely resamples.
func trialCost(s *Scenario) float64 {
	var totalServe, prioSum float64
	minPrio := s.Workloads[0].Priority
	totalOps := 0
	for i, w := range s.Workloads {
		totalServe += serveCycles(s, i) * float64(s.Requests)
		prioSum += w.Priority
		if w.Priority < minPrio {
			minPrio = w.Priority
		}
		totalOps += len(w.Ops)
	}
	v10Span := totalServe * prioSum / minPrio
	cost := 0.0
	for _, scheme := range s.Schemes {
		if scheme == SchemePMT {
			quantum := s.PMTQuantum
			if quantum <= 0 {
				quantum = 1_400_000
			}
			qMin := float64(quantum)
			if s.PMTWeighted {
				qMin *= minPrio / prioSum * float64(len(s.Workloads))
			}
			if qMin < 1 {
				qMin = 1
			}
			cost += float64(s.MaxCycles) / qMin
		} else {
			cost += float64(totalOps*s.Requests)*4 + v10Span/float64(s.Config.TimeSlice)
		}
	}
	return cost
}

func pickInt(rng *mathx.RNG, xs ...int) int       { return xs[rng.Intn(len(xs))] }
func pick64(rng *mathx.RNG, xs ...int64) int64    { return xs[rng.Intn(len(xs))] }
func pickF(rng *mathx.RNG, xs ...float64) float64 { return xs[rng.Intn(len(xs))] }
