package simcheck

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestGenWorkloadScenarioShape(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		sc := GenWorkloadScenario(seed)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: invalid scenario: %v", seed, err)
		}
		if sc.ArrivalCycles == nil || len(sc.ArrivalCycles) != len(sc.Workloads) {
			t.Fatalf("seed %d: malformed schedules", seed)
		}
		if sc.ArrivalRateHz != 0 {
			t.Fatalf("seed %d: rate and schedules both set", seed)
		}
		for _, sch := range sc.Schemes {
			if sch == SchemePMT {
				t.Fatalf("seed %d: PMT scheme with explicit schedules", seed)
			}
		}
		total := 0
		for _, arr := range sc.ArrivalCycles {
			total += len(arr)
		}
		if total == 0 {
			t.Fatalf("seed %d: every schedule empty", seed)
		}
	}
}

func TestGenWorkloadScenarioDeterministic(t *testing.T) {
	a, b := GenWorkloadScenario(17), GenWorkloadScenario(17)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GenWorkloadScenario is nondeterministic")
	}
}

func TestWorkloadScenarioRoundTripsJSON(t *testing.T) {
	sc := GenWorkloadScenario(3)
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc.ArrivalCycles, back.ArrivalCycles) {
		t.Fatal("ArrivalCycles did not round-trip")
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleScenarioValidation(t *testing.T) {
	base := GenWorkloadScenario(1)
	mutate := func(f func(*Scenario)) *Scenario {
		var c Scenario
		data, _ := json.Marshal(base)
		json.Unmarshal(data, &c)
		f(&c)
		return &c
	}
	if err := mutate(func(s *Scenario) { s.ArrivalRateHz = 10 }).Validate(); err == nil {
		t.Error("rate+schedules accepted")
	}
	if err := mutate(func(s *Scenario) { s.ArrivalCycles = s.ArrivalCycles[:len(s.ArrivalCycles)-1] }).Validate(); err == nil && len(base.ArrivalCycles) > 0 {
		t.Error("schedule-count mismatch accepted")
	}
	if err := mutate(func(s *Scenario) { s.ArrivalCycles[0] = []int64{100, 50} }).Validate(); err == nil {
		t.Error("decreasing schedule accepted")
	}
	if err := mutate(func(s *Scenario) { s.Schemes = []string{SchemePMT} }).Validate(); err == nil {
		t.Error("PMT with schedules accepted")
	}
}

func TestWorkloadTrialSweep(t *testing.T) {
	n := uint64(40)
	if testing.Short() {
		n = 10
	}
	for seed := uint64(0); seed < n; seed++ {
		if v := RunWorkloadTrial(seed); v != nil {
			t.Errorf("seed %d:\n%s", seed, join(v.Problems))
			if t.Failed() && seed > 0 {
				return
			}
		}
	}
}
