package simcheck

import (
	"strings"
	"testing"

	"v10/internal/obs"
)

// These tests are the harness's own acceptance gate: deliberately injected
// accounting bugs must be caught by an invariant or an oracle. Each mutation
// models a class of real defect (lost cycles in a counter, a dropped or
// misreported trace span, a scheduler serving the wrong amount of work).

// mutateTracer forwards events through fn, letting a test corrupt or drop
// them between the runner and the checker.
type mutateTracer struct {
	next obs.Tracer
	fn   func(obs.Event) (obs.Event, bool)
}

func (m *mutateTracer) Emit(e obs.Event) {
	if e2, keep := m.fn(e); keep {
		m.next.Emit(e2)
	}
}

// checkedRun runs one scheme with the invariant checker attached, applying
// mutate to every event, and returns the checker's problems (after also
// letting mutateRes corrupt the result).
func checkedRun(t *testing.T, sc *Scenario, scheme string,
	mutate func(obs.Event) (obs.Event, bool), mutateRes func(*Outcome)) []string {
	t.Helper()
	ck := NewChecker(sc, scheme, false)
	var tracer obs.Tracer = ck
	if mutate != nil {
		tracer = &mutateTracer{next: ck, fn: mutate}
	}
	problems := []string{}
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("checker panicked instead of reporting: %v", r)
			}
		}()
		res, err := Execute(sc, scheme, false, tracer)
		out := &Outcome{Scheme: scheme, Result: res, Err: err}
		if mutateRes != nil {
			mutateRes(out)
		}
		problems = append(problems, ck.Finalize(out.Result, out.Err)...)
	}()
	return problems
}

// mutationScenario is a stable multi-tenant closed-loop trial that exercises
// dispatch, stalls, preemption, and HBM contention under every scheme.
func mutationScenario() *Scenario {
	sc := GenScenario(3)
	sc.Schemes = append([]string(nil), AllSchemes...)
	sc.ArrivalRateHz = 0
	return sc
}

func TestMutationCleanBaseline(t *testing.T) {
	sc := mutationScenario()
	for _, scheme := range sc.Schemes {
		if p := checkedRun(t, sc, scheme, nil, nil); len(p) != 0 {
			t.Fatalf("%s: unmutated run flagged:\n%s", scheme, join(p))
		}
	}
}

func TestMutationActiveCyclesOffByOne(t *testing.T) {
	sc := mutationScenario()
	for _, scheme := range sc.Schemes {
		p := checkedRun(t, sc, scheme, nil, func(out *Outcome) {
			out.Result.Workloads[0].ActiveCycles++
		})
		if len(p) == 0 {
			t.Errorf("%s: ActiveCycles+1 accounting bug not caught", scheme)
		}
	}
}

func TestMutationSwitchCyclesLost(t *testing.T) {
	sc := mutationScenario()
	for _, scheme := range []string{SchemeFull, SchemePMT} {
		p := checkedRun(t, sc, scheme, nil, func(out *Outcome) {
			for _, w := range out.Result.Workloads {
				if w.SwitchCycles > 0 {
					w.SwitchCycles--
					return
				}
			}
			t.Skipf("%s: no switch cycles in this trial", scheme)
		})
		if len(p) == 0 {
			t.Errorf("%s: lost switch cycle not caught", scheme)
		}
	}
}

func TestMutationDroppedRunSegment(t *testing.T) {
	sc := mutationScenario()
	for _, scheme := range sc.Schemes {
		dropped := false
		p := checkedRun(t, sc, scheme, func(e obs.Event) (obs.Event, bool) {
			if !dropped && e.Type == obs.EvRunSegment {
				dropped = true
				return e, false
			}
			return e, true
		}, nil)
		if !dropped {
			t.Fatalf("%s: no run segment emitted", scheme)
		}
		if len(p) == 0 {
			t.Errorf("%s: dropped run segment not caught", scheme)
		}
	}
}

func TestMutationStretchedRunSegment(t *testing.T) {
	sc := mutationScenario()
	for _, scheme := range sc.Schemes {
		mutated := false
		p := checkedRun(t, sc, scheme, func(e obs.Event) (obs.Event, bool) {
			if !mutated && e.Type == obs.EvRunSegment && e.Dur > 0 {
				mutated = true
				e.Dur--
			}
			return e, true
		}, nil)
		if !mutated {
			t.Fatalf("%s: no run segment emitted", scheme)
		}
		if len(p) == 0 {
			t.Errorf("%s: misreported run-segment duration not caught", scheme)
		}
	}
}

func TestMutationPreemptionMiscount(t *testing.T) {
	sc := mutationScenario()
	for _, scheme := range []string{SchemeFull, SchemePMT} {
		p := checkedRun(t, sc, scheme, nil, func(out *Outcome) {
			out.Result.Workloads[0].Preemptions++
		})
		if len(p) == 0 {
			t.Errorf("%s: phantom preemption not caught", scheme)
		}
	}
}

// TestMutationMakespanCaughtBySerialOracle injects a wrong makespan into a
// single-workload run: the invariant checker's wall-clock partition flags it,
// and the serial oracle independently pins the expected value.
func TestMutationMakespanCaughtBySerialOracle(t *testing.T) {
	sc := GenScenario(3)
	sc.Workloads = sc.Workloads[:1]
	sc.Clones = false
	sc.ArrivalRateHz = 0
	sc.Schemes = append([]string(nil), AllSchemes...)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	out := RunScheme(sc, SchemeBase, false)
	if len(out.Problems) != 0 || out.Err != nil {
		t.Fatalf("baseline run flagged: %v %s", out.Err, join(out.Problems))
	}
	out.Result.TotalCycles += 7
	problems := checkSerial(sc, out)
	if len(problems) == 0 {
		t.Fatal("mutated makespan not caught by serial oracle")
	}
	if !strings.Contains(problems[0], "makespan") {
		t.Fatalf("unexpected problem: %s", problems[0])
	}
}

// TestMinimizeShrinksFailure minimizes a scenario that fails by construction
// (an absurdly small cycle budget) and checks the repro still fails but got
// structurally smaller.
func TestMinimizeShrinksFailure(t *testing.T) {
	sc := GenScenario(5)
	sc.MaxCycles = 10
	min, v := Minimize(sc, 150)
	if v == nil {
		t.Fatal("minimized scenario no longer fails")
	}
	if len(min.Schemes) != 1 {
		t.Errorf("minimizer kept %d schemes, want 1", len(min.Schemes))
	}
	if len(min.Workloads) != 1 {
		t.Errorf("minimizer kept %d workloads, want 1", len(min.Workloads))
	}
	if err := min.Validate(); err != nil {
		t.Errorf("minimized scenario invalid: %v", err)
	}
}
