package simcheck

import (
	"testing"

	"v10/internal/faults"
	"v10/internal/fleet"
	"v10/internal/npu"
	"v10/internal/obs"
	"v10/internal/trace"
)

// This file rides the per-core invariant Checker on whole fleet runs through
// fleet.Options.CoreTracer. It lives in simcheck (not fleet) because the
// chaos harness makes simcheck a dependency of fleet's test suite's subject.

var fleetCfg = npu.DefaultConfig()

// fleetSynthetic builds a deterministic workload: pairs alternating SA/VU ops.
func fleetSynthetic(name string, saLen, vuLen int64, pairs int) *trace.Workload {
	return trace.NewWorkload(name, name, 1, func(int) *trace.Graph {
		g := &trace.Graph{}
		for i := 0; i < pairs; i++ {
			sa := trace.Op{ID: len(g.Ops), Kind: trace.KindSA, Compute: saLen}
			if len(g.Ops) > 0 {
				sa.Deps = []int{len(g.Ops) - 1}
			}
			g.Ops = append(g.Ops, sa)
			g.Ops = append(g.Ops, trace.Op{
				ID: len(g.Ops), Kind: trace.KindVU, Compute: vuLen,
				Deps: []int{len(g.Ops) - 1},
			})
		}
		return g
	})
}

// quickFleetOptions mirrors the fleet package's quick test configuration: a
// small but non-trivial run where a handful of requests queue and complete.
func quickFleetOptions() fleet.Options {
	return fleet.Options{
		Config:         fleetCfg,
		Cores:          2,
		Policy:         fleet.PolicyLeastLoaded,
		RateHz:         3000,
		DurationCycles: 3_000_000,
		Seed:           5,
		Parallel:       1, // the checkers maps below are not synchronized
	}
}

// specFor mirrors the fleetSynthetic workload shapes as simcheck
// WorkloadSpecs so the invariant checker can derive each core's expected
// operator streams independently of the runner.
func specFor(name string, saLen, vuLen int64, pairs int) WorkloadSpec {
	spec := WorkloadSpec{Name: name, Priority: 1}
	for i := 0; i < pairs; i++ {
		spec.Ops = append(spec.Ops,
			OpSpec{Kind: "SA", Compute: saLen},
			OpSpec{Kind: "VU", Compute: vuLen})
	}
	return spec
}

// oracleTenants pairs each fleet tenant with its independently-derived spec.
func oracleTenants() ([]*trace.Workload, []WorkloadSpec) {
	type shape struct {
		name   string
		sa, vu int64
		pairs  int
	}
	shapes := []shape{
		{"sa0", 4000, 10, 6},
		{"vu0", 10, 4000, 6},
		{"sa1", 3000, 20, 5},
		{"vu1", 20, 3000, 5},
	}
	ws := make([]*trace.Workload, len(shapes))
	specs := make([]WorkloadSpec, len(shapes))
	for i, s := range shapes {
		ws[i] = fleetSynthetic(s.name, s.sa, s.vu, s.pairs)
		specs[i] = specFor(s.name, s.sa, s.vu, s.pairs)
	}
	return ws, specs
}

// TestFleetPassesSimcheckOracles rides a simcheck.Checker on every core of a
// fleet run through the CoreTracer hook: each core's event stream must satisfy
// the full invariant suite (wall-cycle partition per FU, every dispatched
// operator completes or resumes exactly once, ActiveCycles equals the traced
// run segments) against operator streams derived independently from the specs.
func TestFleetPassesSimcheckOracles(t *testing.T) {
	tenants, specs := oracleTenants()
	checkers := map[int]*Checker{}

	o := quickFleetOptions()
	o.Scheme = "V10-Full"
	o.CoreTracer = func(core int, roster []int) obs.Tracer {
		sc := &Scenario{
			Config:        o.Config,
			ArrivalRateHz: 1, // marker: open-loop serving, no latency telescoping
		}
		for _, tnt := range roster {
			sc.Workloads = append(sc.Workloads, specs[tnt])
		}
		checkers[core] = NewChecker(sc, o.Scheme, false)
		return checkers[core]
	}
	res, err := fleet.Run(tenants, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(checkers) == 0 {
		t.Fatal("CoreTracer was never invoked")
	}
	for core, ck := range checkers {
		for _, p := range ck.Finalize(res.Cores[core].Run, nil) {
			t.Errorf("core %d: %s", core, p)
		}
	}

	// Conservation across the fleet: every offered request completes or sheds
	// exactly once, and fleet throughput is exactly the sum of the per-core
	// cycle-accurate results.
	if res.Offered != res.Completed+res.Shed {
		t.Fatalf("offered %d != completed %d + shed %d", res.Offered, res.Completed, res.Shed)
	}
	var coreRequests int
	for _, cr := range res.Cores {
		if cr.Run == nil {
			continue
		}
		for _, wl := range cr.Run.Workloads {
			coreRequests += wl.Requests
		}
	}
	if coreRequests != res.Completed {
		t.Fatalf("Σ per-core requests %d != fleet completed %d", coreRequests, res.Completed)
	}

	// Per-core wall-cycle sanity: the fleet's makespan is its slowest core.
	var slowest int64
	for _, cr := range res.Cores {
		if cr.Run != nil && cr.Run.TotalCycles > slowest {
			slowest = cr.Run.TotalCycles
		}
	}
	if res.TotalCycles != slowest {
		t.Fatalf("TotalCycles %d != slowest core %d", res.TotalCycles, slowest)
	}
}

// TestFleetOraclesAllSchemes repeats the checker ride-along on every per-core
// scheduler scheme the fleet supports.
func TestFleetOraclesAllSchemes(t *testing.T) {
	for _, scheme := range []string{"V10-Base", "V10-Fair", "V10-Full", "PMT"} {
		t.Run(scheme, func(t *testing.T) {
			tenants, specs := oracleTenants()
			checkers := map[int]*Checker{}
			o := quickFleetOptions()
			o.Scheme = scheme
			o.CoreTracer = func(core int, roster []int) obs.Tracer {
				sc := &Scenario{Config: o.Config, ArrivalRateHz: 1}
				for _, tnt := range roster {
					sc.Workloads = append(sc.Workloads, specs[tnt])
				}
				checkers[core] = NewChecker(sc, scheme, false)
				return checkers[core]
			}
			res, err := fleet.Run(tenants, o)
			if err != nil {
				t.Fatal(err)
			}
			for core, ck := range checkers {
				for _, p := range ck.Finalize(res.Cores[core].Run, nil) {
					t.Errorf("core %d: %s", core, p)
				}
			}
			// PMT serves closed-loop: completions may exceed admissions on the
			// raw per-core results, but tenant stats must stay capped.
			for _, ts := range res.Tenants {
				if ts.Completed > ts.Admitted {
					t.Errorf("tenant %d completed %d > admitted %d", ts.Tenant, ts.Completed, ts.Admitted)
				}
			}
		})
	}
}

// TestFleetOraclesSurviveCoreFailure rides checkers on the cores a fail-stop
// fault leaves alive: their event streams — including the migrated-in
// arrivals they absorb — must satisfy the full per-core invariant suite.
func TestFleetOraclesSurviveCoreFailure(t *testing.T) {
	tenants, specs := oracleTenants()
	checkers := map[int]*Checker{}
	o := quickFleetOptions()
	o.Scheme = "V10-Full"
	o.Cores = 3
	o.HeartbeatCycles = 100_000
	sched, err := faults.Parse("fail@0:1000000")
	if err != nil {
		t.Fatal(err)
	}
	o.Faults = sched
	o.CoreTracer = func(core int, roster []int) obs.Tracer {
		if core == 0 {
			return &obs.Log{} // the dying core's run is halted mid-flight
		}
		sc := &Scenario{Config: o.Config, ArrivalRateHz: 1}
		for _, tnt := range roster {
			sc.Workloads = append(sc.Workloads, specs[tnt])
		}
		checkers[core] = NewChecker(sc, o.Scheme, false)
		return checkers[core]
	}
	res, err := fleet.Run(tenants, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FailedCores) != 1 || res.Migrated == 0 {
		t.Fatalf("fixture: failed cores %v, %d migrations — expected a failure with recoveries",
			res.FailedCores, res.Migrated)
	}
	if len(checkers) == 0 {
		t.Fatal("no surviving core got a checker")
	}
	for core, ck := range checkers {
		if res.Cores[core].Run == nil {
			continue
		}
		for _, p := range ck.Finalize(res.Cores[core].Run, nil) {
			t.Errorf("surviving core %d: %s", core, p)
		}
	}
}
