package simcheck

import (
	"fmt"
	"math"
	"testing"

	"v10/internal/collocate"
	"v10/internal/trace"
)

// FuzzSchedRun feeds random seeds through the full trial harness: generate a
// scenario, run every scheme with the invariant checker attached, then the
// differential oracles. Any violation fails the fuzz run with the seed that
// reproduces it (replay with `go run ./cmd/v10check -replay` after saving the
// repro, or simply rerun the seed).
func FuzzSchedRun(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Add(uint64(1<<63) + 12345)
	f.Fuzz(func(t *testing.T, seed uint64) {
		if v := RunTrial(seed); v != nil {
			t.Fatalf("seed %d:\n%s", seed, join(v.Problems))
		}
	})
}

// FuzzCollocateTrain drives the collocation-advisor pipeline (feature
// extraction → PCA/K-Means clustering → pairwise simulation profiling →
// prediction) over generated workload sets, checking the model never emits
// NaN/Inf and that PredictPerf is symmetric in its arguments.
func FuzzCollocateTrain(f *testing.F) {
	for seed := uint64(0); seed < 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		sc := GenScenario(seed)
		// A small but diverse training set: this scenario's workloads plus
		// the next seed's, renamed to keep identities distinct.
		sc2 := GenScenario(seed + 1)
		var wls []*trace.Workload
		for si, s := range []*Scenario{sc, sc2} {
			for wi, w := range s.BuildWorkloads() {
				w.Name = fmt.Sprintf("S%dW%d", si, wi)
				wls = append(wls, w)
			}
		}
		feats := make([]collocate.Features, len(wls))
		for i, w := range wls {
			feats[i] = collocate.ExtractFeatures(w, sc.Config, 1)
			for j, x := range feats[i].Vec {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatalf("seed %d: feature %d of %s is %v", seed, j, w.Name, x)
				}
			}
		}
		model, err := collocate.Train(wls, feats, collocate.SimPairPerf(sc.Config, 1), collocate.TrainConfig{
			K: 2, PCADims: 2, PairSamples: 1, Parallel: 1, Seed: seed,
		})
		if err != nil {
			t.Fatalf("seed %d: Train: %v", seed, err)
		}
		for i := range feats {
			for j := range feats {
				p := model.PredictPerf(feats[i], feats[j])
				if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
					t.Fatalf("seed %d: PredictPerf(%d,%d) = %v", seed, i, j, p)
				}
				if q := model.PredictPerf(feats[j], feats[i]); q != p {
					t.Fatalf("seed %d: PredictPerf not symmetric: (%d,%d)=%v vs (%d,%d)=%v", seed, i, j, p, j, i, q)
				}
			}
		}
	})
}
