package simcheck

import (
	"encoding/json"
	"strings"
	"testing"

	"v10/internal/faults"
	"v10/internal/fleet"
)

func fleetRunForTest(cs *ChaosScenario) (*fleet.Result, error) {
	return fleet.Run(cs.buildWorkloads(), cs.options(&faults.Schedule{Faults: cs.Faults}))
}

// TestChaosTrials is the in-package slice of the chaos gate (CI runs the full
// 200-trial sweep through cmd/v10check -chaos): every seeded random fleet
// trial under fault injection must conserve requests, replay bit-identically,
// and keep its typed fault events consistent with its recovery metrics.
func TestChaosTrials(t *testing.T) {
	n := uint64(60)
	if testing.Short() {
		n = 20
	}
	for seed := uint64(0); seed < n; seed++ {
		if v := RunChaosTrial(seed); v != nil {
			j, _ := json.MarshalIndent(v, "", "  ")
			t.Fatalf("chaos seed %d:\n%s", seed, j)
		}
	}
}

func TestGenChaosScenarioDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		a, _ := json.Marshal(GenChaosScenario(seed))
		b, _ := json.Marshal(GenChaosScenario(seed))
		if string(a) != string(b) {
			t.Fatalf("seed %d: scenario generation is not deterministic", seed)
		}
	}
}

// TestChaosTrialsCoverFailures guards the generator against regressing into
// triviality: across a modest seed range the trials must include core
// failures, migration landings, and retry-exhaustion sheds.
func TestChaosTrialsCoverFailures(t *testing.T) {
	var fails, migs, sheds int
	for seed := uint64(0); seed < 40; seed++ {
		cs := GenChaosScenario(seed)
		for _, f := range cs.Faults {
			if f.Kind == faults.KindFail {
				fails++
			}
		}
	}
	if fails == 0 {
		t.Fatal("no fail-stop faults across 40 generated scenarios")
	}
	// The trial results themselves: reuse two seeds known (by construction,
	// any healthy generator) to produce recoveries.
	for seed := uint64(0); seed < 40 && (migs == 0 || sheds == 0); seed++ {
		cs := GenChaosScenario(seed)
		res, err := fleetRunForTest(cs)
		if err != nil || res == nil {
			continue
		}
		migs += res.Migrated
		sheds += res.MigrationShed
	}
	if migs == 0 {
		t.Error("no migration landings across 40 chaos trials")
	}
	if sheds == 0 {
		t.Error("no migration sheds across 40 chaos trials")
	}
}

func TestChaosViolationError(t *testing.T) {
	v := &ChaosViolation{
		Scenario: &ChaosScenario{Seed: 7},
		Problems: []string{"first problem", "second"},
	}
	msg := v.Error()
	if !strings.Contains(msg, "seed 7") || !strings.Contains(msg, "first problem") {
		t.Fatalf("unhelpful violation message: %q", msg)
	}
	// Violations must survive a JSON round trip for -replay style repros.
	j, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var back ChaosViolation
	if err := json.Unmarshal(j, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scenario.Seed != 7 || len(back.Problems) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

// FuzzFaultSchedule mutates fault-spec strings against a generated fleet
// scenario: any spec the parser and validator accept must run through the
// full chaos oracle suite clean — conservation, determinism, event/metric
// consistency. Parser rejections are fine; panics and lost requests are not.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(uint64(0), "fail@0:500000")
	f.Add(uint64(1), "fail@0:100000;fail@1:200000")
	f.Add(uint64(2), "stall@1:50000+20000")
	f.Add(uint64(3), "hbm@0:10000+40000x0.5;vmem@1:30000+30000x0.4")
	f.Add(uint64(4), "fail@1:1")
	f.Add(uint64(5), "stall@0:10000+5000,fail@0:400000")
	f.Add(uint64(6), "")
	f.Fuzz(func(t *testing.T, seed uint64, spec string) {
		schedule, err := faults.Parse(spec)
		if err != nil {
			return // rejected specs only need to not panic
		}
		cs := GenChaosScenario(seed)
		if err := schedule.Validate(cs.Cores); err != nil {
			return // e.g. core index beyond this scenario's fleet
		}
		cs.Faults = schedule.Faults
		if problems := CheckChaosScenario(cs); len(problems) > 0 {
			j, _ := json.MarshalIndent(&ChaosViolation{Scenario: cs, Problems: problems}, "", "  ")
			t.Fatalf("seed %d spec %q:\n%s", seed, spec, j)
		}
	})
}
