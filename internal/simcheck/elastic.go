// Elastic harness: seeded random fleet trials under the autoscaling control
// plane. An ElasticScenario is a self-contained serving trial (tenants,
// churn/flash-crowd traffic, control-loop knobs, admission policy) whose
// oracles assert the control plane's safety laws — request conservation
// through core drains (no tenant request is lost when its core is retired),
// control discipline (cooldown, hysteresis, LIFO drain order, verified by
// replaying a clean controller over the recorded signals), consistency of the
// typed control events with the recovery metrics, core-aware windowed stats,
// honest admission estimates, and bit-identical determinism.
package simcheck

import (
	"fmt"
	"math"

	"v10/internal/collocate"
	"v10/internal/ctlplane"
	"v10/internal/fleet"
	"v10/internal/mathx"
	"v10/internal/npu"
	"v10/internal/obs"
	"v10/internal/trace"
	"v10/internal/workload"
)

// ElasticScenario is one self-contained autoscaling fleet trial. It
// serializes to JSON so a failing seed replays from a repro file.
type ElasticScenario struct {
	Seed           uint64         `json:"seed"`
	Config         npu.CoreConfig `json:"config"`
	Cores          int            `json:"cores"`
	Scheme         string         `json:"scheme"` // V10 only: drains need checkpoint support
	Policy         string         `json:"policy"`
	QueueLimit     int            `json:"queue_limit"`
	DurationCycles int64          `json:"duration_cycles"`

	Elastic   ctlplane.Config `json:"elastic"`
	Admission string          `json:"admission"`
	Recluster bool            `json:"recluster,omitempty"`

	Workloads []WorkloadSpec  `json:"workloads"`
	Traffic   []workload.Spec `json:"traffic"` // one churn/burst spec per tenant
}

// ElasticViolation is a failed elastic trial: the scenario plus every oracle
// message, JSON-serializable for replay.
type ElasticViolation struct {
	Scenario *ElasticScenario `json:"scenario"`
	Problems []string         `json:"problems"`
}

// Error implements error.
func (v *ElasticViolation) Error() string {
	return fmt.Sprintf("simcheck: elastic seed %d: %d problem(s), first: %s",
		v.Scenario.Seed, len(v.Problems), v.Problems[0])
}

// GenElasticScenario derives a complete random elastic trial from one seed:
// fleet shape with a spare-core range, control-loop knobs tight enough that
// scaling actually happens inside the horizon, a tenant set, and a traffic
// mix of diurnal swings, MMPP flash crowds, and plain Poisson — with some
// tenants churning in and out via bounded active windows. Same seed, same
// scenario.
func GenElasticScenario(seed uint64) *ElasticScenario {
	rng := mathx.NewRNG(seed + 0xe1a5)
	cfg := npu.DefaultConfig()
	cfg.TimeSlice = pick64(rng, 1024, 8192, 32768)

	es := &ElasticScenario{
		Seed:       seed,
		Config:     cfg,
		Cores:      3 + rng.Intn(3),
		Scheme:     pickScheme(rng),
		Policy:     "least-loaded",
		QueueLimit: 2 + rng.Intn(7),
	}
	es.Elastic = ctlplane.Config{
		MinCores:          1 + rng.Intn(2),
		HysteresisWindows: 1 + rng.Intn(2),
	}
	// Most trials drain eagerly (high occupancy tolerance) so retirements
	// catch in-flight work and exercise the readmission path, not just
	// empty-core shutdowns.
	if rng.Float64() < 0.6 {
		es.Elastic.DrainOccupancy = pickF(rng, 0.5, 0.75, 0.95)
	}
	if rng.Float64() < 0.5 {
		es.Admission = string(fleet.AdmitPredictive)
	} else {
		es.Admission = string(fleet.AdmitQueueBound)
	}
	// A third of the trials serve under the advisor with online re-clustering
	// (the model itself is trained cheaply inside the checker).
	if rng.Float64() < 0.35 {
		es.Policy = "advisor"
		es.Recluster = true
	}

	nw := 3 + rng.Intn(4)
	partition := cfg.VMemBytes / int64(nw)
	for i := 0; i < nw; i++ {
		es.Workloads = append(es.Workloads, WorkloadSpec{
			Name:     fmt.Sprintf("T%d", i),
			Priority: 1,
			Ops:      genOps(rng, partition),
		})
	}
	balanceDurations(&Scenario{Config: cfg, Workloads: es.Workloads})

	// Offered load against the *floor* capacity so the loop has a reason to
	// scale: peaks overload MinCores, troughs leave the fleet idle.
	var totalServe float64
	sc := &Scenario{Config: cfg, Workloads: es.Workloads}
	for i := range es.Workloads {
		totalServe += serveCycles(sc, i)
	}
	if totalServe < 1 {
		totalServe = 1
	}
	// perTenant is chosen so the aggregate demand (Σ perTenant × serve_i =
	// perTenant × totalServe cycles/sec) runs at `util` × the floor capacity:
	// peaks overload MinCores, troughs leave spares idle.
	util := pickF(rng, 1.2, 2.0, 3.5)
	perTenant := util * float64(es.Elastic.MinCores) * cfg.FrequencyHz / totalServe

	// Stretch the horizon until every tenant sees a statistically meaningful
	// arrival stream — windows with no arrivals carry no SLO signal and the
	// control loop never wakes up. Bounded to keep trials cheap.
	es.DurationCycles = pick64(rng, 1_000_000, 2_000_000, 4_000_000)
	if minD := int64(25 * totalServe / (util * float64(es.Elastic.MinCores))); es.DurationCycles < minD {
		es.DurationCycles = minD
	}
	if es.DurationCycles > 24_000_000 {
		es.DurationCycles = 24_000_000
	}
	if maxPer := 120 * cfg.FrequencyHz / float64(es.DurationCycles); perTenant > maxPer {
		perTenant = maxPer
	}
	// Tight control cadence so hysteresis+cooldown leave room for several
	// scale decisions inside the horizon.
	es.Elastic.IntervalCycles = es.DurationCycles / pick64(rng, 12, 16, 24)
	if rng.Float64() < 0.5 {
		es.Elastic.CooldownCycles = es.Elastic.IntervalCycles * int64(1+rng.Intn(3))
	}

	for i := 0; i < nw; i++ {
		spec := workload.Spec{RateHz: perTenant}
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // diurnal swing: the canonical scale-up/down driver
			spec.Process = workload.Diurnal
			spec.Amplitude = pickF(rng, 0.8, 0.95)
			spec.PhaseFrac = pickF(rng, 0, 0.25, 0.5)
		case 4, 5, 6: // MMPP flash crowd
			spec.Process = workload.MMPP
			spec.BurstFactor = pickF(rng, 6, 12)
		default:
			spec.Process = workload.Poisson
		}
		// Tenant churn: some tenants join late or leave early.
		switch rng.Intn(5) {
		case 0:
			spec.StartCycle = es.DurationCycles / int64(pick64(rng, 3, 4))
		case 1:
			spec.EndCycle = es.DurationCycles * 2 / 3
		}
		es.Traffic = append(es.Traffic, spec)
	}
	return es
}

// buildWorkloads materializes the tenant set.
func (es *ElasticScenario) buildWorkloads() []*trace.Workload {
	return (&Scenario{Workloads: es.Workloads}).BuildWorkloads()
}

// arrivals materializes the churn/flash-crowd schedules.
func (es *ElasticScenario) arrivals() ([][]int64, error) {
	eng := workload.Engine{Config: es.Config, HorizonCycles: es.DurationCycles, Seed: es.Seed}
	return eng.Schedules(es.Traffic)
}

// trainModel fits a small advisor model over the scenario's tenants with a
// cheap analytic pair-performance stub (no simulation): recluster trials need
// a model to update, not an accurate one.
func (es *ElasticScenario) trainModel(ws []*trace.Workload) (*collocate.Model, error) {
	feats := make([]collocate.Features, len(ws))
	for i, w := range ws {
		feats[i] = collocate.ExtractFeatures(w, es.Config, elasticProfileRequests)
	}
	perf := func(a, b *trace.Workload) (float64, error) {
		fa := collocate.ExtractFeatures(a, es.Config, 1)
		fb := collocate.ExtractFeatures(b, es.Config, 1)
		// Complementary FU time fractions collocate well.
		return 1 + math.Abs(fa.Vec[7]-fb.Vec[7]), nil
	}
	return collocate.Train(ws, feats, perf, collocate.TrainConfig{
		K: 2, PairSamples: 2, Seed: es.Seed + 0x777, Parallel: 1,
	})
}

// options maps the scenario onto fleet.Options.
func (es *ElasticScenario) options(arr [][]int64, model *collocate.Model) fleet.Options {
	cfg := es.Elastic
	return fleet.Options{
		Config:         es.Config,
		Cores:          es.Cores,
		Scheme:         es.Scheme,
		Policy:         fleet.Policy(es.Policy),
		Arrivals:       arr,
		DurationCycles: es.DurationCycles,
		QueueLimit:     es.QueueLimit,
		Seed:           es.Seed,
		Elastic:        &cfg,
		Admission:      fleet.Admission(es.Admission),
		Recluster:      es.Recluster,
		Model:          model,
		// Serial inside one trial: v10check parallelizes across trials.
		Parallel: 1,
	}
}

// elasticProfileRequests pins the dispatcher's ProfileRequests default; the
// estimate- and recluster-consistency oracles recompute features and service
// estimates independently and must sample identically.
const elasticProfileRequests = 3

// elasticSLOFactor pins the dispatcher's SLOFactor default (the scenario
// never overrides it).
const elasticSLOFactor = 10

// CheckElasticScenario runs the trial and returns every oracle violation.
func CheckElasticScenario(es *ElasticScenario) []string {
	return checkElastic(es, nil, nil)
}

// checkElastic is CheckElasticScenario with mutation hooks: mutateOpts may
// corrupt the run's options (e.g. skew the admission estimates) and mutateRes
// may corrupt the result (e.g. drop a readmission or zero the model drift).
// The mutation acceptance tests use the hooks to prove injected control-plane
// bugs are caught; when either hook is set the determinism oracle is skipped
// (a corrupted view trivially differs from its clean re-run).
func checkElastic(es *ElasticScenario,
	mutateOpts func(*fleet.Options), mutateRes func(*fleet.Result)) (problems []string) {
	defer func() {
		if r := recover(); r != nil {
			problems = append(problems, fmt.Sprintf("panic: %v", r))
		}
	}()
	arr, err := es.arrivals()
	if err != nil {
		return append(problems, fmt.Sprintf("traffic generation error: %v", err))
	}
	ws := es.buildWorkloads()
	var model *collocate.Model
	if es.Recluster {
		if model, err = es.trainModel(ws); err != nil {
			return append(problems, fmt.Sprintf("advisor training error: %v", err))
		}
	}

	// Run 1: control plane on, fleet event log attached.
	fleetLog := &obs.Log{}
	o := es.options(arr, model)
	o.Tracer = fleetLog
	if mutateOpts != nil {
		mutateOpts(&o)
	}
	res, err := fleet.Run(ws, o)
	if err != nil {
		problems = append(problems, fmt.Sprintf("fleet run error: %v", err))
	}
	if res == nil {
		return problems
	}

	// Run 2: determinism — the same seed must reproduce the run bit for bit,
	// decision trace and window signals included.
	if mutateOpts == nil && mutateRes == nil {
		res2, err2 := fleet.Run(ws, es.options(arr, model))
		if err2 != nil {
			problems = append(problems, fmt.Sprintf("fleet re-run error: %v", err2))
		} else if !sameResult(res, res2) {
			problems = append(problems, "elastic run is not deterministic: re-run with the same seed differs")
		}
	}
	if mutateRes != nil {
		mutateRes(res)
	}

	uncapped := err == nil
	problems = append(problems, checkElasticConservation(res, uncapped)...)
	problems = append(problems, checkElasticControl(es, res)...)
	problems = append(problems, checkElasticEvents(res, fleetLog.Events)...)
	problems = append(problems, checkElasticWindows(res)...)
	problems = append(problems, checkEstimateConsistency(es, ws, res)...)
	if es.Recluster {
		problems = append(problems, checkReclusterConsistency(es, ws, model, res)...)
	}
	return problems
}

// checkElasticConservation asserts the drain-safe conservation law: every
// offered request is completed or shed exactly once, and every drain victim
// is readmitted or shed — retiring a core never loses a tenant's work.
func checkElasticConservation(res *fleet.Result, uncapped bool) (problems []string) {
	failf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	var drained, readmitted, drainShed int
	for _, ts := range res.Tenants {
		if uncapped && ts.Offered != ts.Completed+ts.Shed {
			failf("tenant %d: offered %d != completed %d + shed %d — request lost or double-counted",
				ts.Tenant, ts.Offered, ts.Completed, ts.Shed)
		}
		if ts.Drained != ts.Readmitted+ts.DrainShed {
			failf("tenant %d: %d drain victim(s) != %d readmitted + %d drain-shed — leaked during drain",
				ts.Tenant, ts.Drained, ts.Readmitted, ts.DrainShed)
		}
		if ts.Good > ts.Completed {
			failf("tenant %d: %d SLO-good of %d completed", ts.Tenant, ts.Good, ts.Completed)
		}
		drained += ts.Drained
		readmitted += ts.Readmitted
		drainShed += ts.DrainShed
	}
	ctl := res.Control
	if ctl == nil {
		return append(problems, "elastic run has no control outcome")
	}
	if ctl.DrainVictims != drained || ctl.Readmitted != readmitted || ctl.DrainShed != drainShed {
		failf("control totals (drained %d readmitted %d drain-shed %d) do not match tenant sums (%d %d %d)",
			ctl.DrainVictims, ctl.Readmitted, ctl.DrainShed, drained, readmitted, drainShed)
	}
	return problems
}

// checkElasticControl asserts the control-discipline invariants: decisions
// replay cleanly (cooldown, hysteresis, LIFO), active counts stay inside
// [MinCores, Cores], home cores are never retired, and the provisioned
// core-cycles match the recorded activity spans.
func checkElasticControl(es *ElasticScenario, res *fleet.Result) (problems []string) {
	failf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	ctl := res.Control
	if ctl == nil {
		return append(problems, "elastic run has no control outcome")
	}
	problems = append(problems, ctlplane.CheckDiscipline(ctl.Config, ctl.MaxCores, ctl.Windows, ctl.Decisions)...)

	for _, sig := range ctl.Windows {
		if sig.ActiveCores < ctl.MinCores || sig.ActiveCores > ctl.MaxCores {
			failf("window %d: %d active cores outside [%d,%d]",
				sig.Window, sig.ActiveCores, ctl.MinCores, ctl.MaxCores)
		}
		if sig.Attainment < 0 || sig.Attainment > 1 {
			failf("window %d: attainment %v outside [0,1]", sig.Window, sig.Attainment)
		}
	}
	if ctl.FinalActiveCores < ctl.MinCores || ctl.FinalActiveCores > ctl.MaxCores ||
		ctl.PeakActiveCores < ctl.FinalActiveCores && ctl.ScaleDowns == 0 {
		failf("active-core accounting inconsistent: final %d peak %d (min %d max %d)",
			ctl.FinalActiveCores, ctl.PeakActiveCores, ctl.MinCores, ctl.MaxCores)
	}

	// Home cores [0, MinCores) are always active: exactly one span covering
	// the whole horizon each. Spares' spans stay inside it.
	fullSpans := map[int]int{}
	var provisioned int64
	for _, sp := range ctl.CoreSpans {
		if sp.Core < 0 || sp.Core >= ctl.MaxCores {
			failf("span on nonexistent core %d", sp.Core)
			continue
		}
		if sp.StartCycle < 0 || sp.EndCycle > res.DurationCycles || sp.EndCycle <= sp.StartCycle {
			failf("core %d: malformed activity span [%d,%d)", sp.Core, sp.StartCycle, sp.EndCycle)
		}
		if sp.StartCycle == 0 && sp.EndCycle == res.DurationCycles {
			fullSpans[sp.Core]++
		} else if sp.Core < ctl.MinCores {
			failf("home core %d has a partial activity span [%d,%d) — it must never be drained",
				sp.Core, sp.StartCycle, sp.EndCycle)
		}
		provisioned += sp.EndCycle - sp.StartCycle
	}
	for c := 0; c < ctl.MinCores; c++ {
		if fullSpans[c] != 1 {
			failf("home core %d: %d full-horizon spans, want exactly 1", c, fullSpans[c])
		}
	}
	if provisioned != res.ProvisionedCoreCycles {
		failf("provisioned core-cycles %d do not match span sum %d", res.ProvisionedCoreCycles, provisioned)
	}
	return problems
}

// checkElasticEvents cross-checks the typed control events against the
// control metrics: the Perfetto timeline and the JSON summary must tell one
// story.
func checkElasticEvents(res *fleet.Result, events []obs.Event) (problems []string) {
	ctl := res.Control
	if ctl == nil {
		return nil
	}
	counts := map[obs.EventType]int{}
	var drainVictims int
	for _, e := range events {
		counts[e.Type]++
		if e.Type == obs.EvCoreDrain {
			drainVictims += int(e.Arg1)
		}
	}
	check := func(ty obs.EventType, want int, what string) {
		if counts[ty] != want {
			problems = append(problems, fmt.Sprintf("%d %s event(s) for %s count %d", counts[ty], ty, what, want))
		}
	}
	check(obs.EvScaleUp, ctl.ScaleUps, "scale-up")
	check(obs.EvScaleDown, ctl.ScaleDowns, "scale-down")
	check(obs.EvCoreDrain, ctl.ScaleDowns, "scale-down (one drain per retirement)")
	check(obs.EvReadmit, ctl.Readmitted, "readmitted")
	check(obs.EvRecluster, ctl.Reclusters, "recluster")
	if drainVictims != ctl.DrainVictims {
		problems = append(problems, fmt.Sprintf(
			"core-drain events carry %d victims for drain-victim count %d", drainVictims, ctl.DrainVictims))
	}
	var migShed int
	for _, ts := range res.Tenants {
		migShed += ts.MigrationShed + ts.DrainShed
	}
	check(obs.EvMigrateShed, migShed, "migration-shed + drain-shed")
	return problems
}

// checkElasticWindows asserts the core-aware windowed stats: per-tenant
// window rows must cover the horizon, attribute completions exactly once,
// and report per-core goodput against the cores active in that window.
func checkElasticWindows(res *fleet.Result) (problems []string) {
	failf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	for _, ts := range res.Tenants {
		if len(ts.Windows) == 0 {
			failf("tenant %d: no stats windows despite autoscaling", ts.Tenant)
			continue
		}
		sumC, sumG := 0, 0
		for i, w := range ts.Windows {
			if w.Window != i {
				failf("tenant %d: window %d indexed as %d", ts.Tenant, i, w.Window)
			}
			if w.EndCycle <= w.StartCycle {
				failf("tenant %d window %d: empty bounds [%d,%d)", ts.Tenant, i, w.StartCycle, w.EndCycle)
			}
			if w.Good > w.Completed {
				failf("tenant %d window %d: %d good of %d completed", ts.Tenant, i, w.Good, w.Completed)
			}
			sumC += w.Completed
			sumG += w.Good
		}
		if sumC != ts.Completed || sumG != ts.Good {
			failf("tenant %d: window sums (%d completed, %d good) != totals (%d, %d) — completions misattributed across scale events",
				ts.Tenant, sumC, sumG, ts.Completed, ts.Good)
		}
	}
	return problems
}

// checkEstimateConsistency recomputes every tenant's service-time estimate
// from the trace alone and pins the dispatcher's SLO denominator to it: a
// dispatcher whose admission estimates drift from the profiling path (the
// "estimates off by 2x" bug) books queues and SLOs it cannot honor.
func checkEstimateConsistency(es *ElasticScenario, ws []*trace.Workload, res *fleet.Result) (problems []string) {
	for i, ts := range res.Tenants {
		want := elasticSLOFactor * fleet.EstimateServeCycles(ws[i], es.Config, elasticProfileRequests)
		if ts.SLOCycles != want {
			problems = append(problems, fmt.Sprintf(
				"tenant %d: SLO %v cycles != %d× the recomputed service estimate %v — admission estimates are skewed",
				ts.Tenant, ts.SLOCycles, elasticSLOFactor, want/elasticSLOFactor))
		}
	}
	return problems
}

// checkReclusterConsistency is the stale-centroid oracle: replaying the
// recorded per-window observations against a fresh clone of the offline
// model must reproduce the run's cumulative drift exactly (same fold order,
// same float math). A control plane that stops updating centroids as the mix
// churns reports a drift this replay contradicts.
func checkReclusterConsistency(es *ElasticScenario, ws []*trace.Workload,
	model *collocate.Model, res *fleet.Result) (problems []string) {
	ctl := res.Control
	if ctl == nil {
		return nil
	}
	if len(ctl.ObservedTenants) != len(ctl.Windows) {
		return append(problems, fmt.Sprintf(
			"observed-tenant record has %d windows, signals have %d", len(ctl.ObservedTenants), len(ctl.Windows)))
	}
	feats := make([]collocate.Features, len(ws))
	for i, w := range ws {
		feats[i] = collocate.ExtractFeatures(w, es.Config, elasticProfileRequests)
	}
	clone := model.CloneForOnline()
	want := 0.0
	for _, window := range ctl.ObservedTenants {
		// Per-window inner sum first, mirroring the dispatcher's fold order —
		// float addition is not associative.
		winDrift := 0.0
		for _, t := range window {
			if t < 0 || t >= len(feats) {
				return append(problems, fmt.Sprintf("observed nonexistent tenant %d", t))
			}
			_, moved := clone.Observe(feats[t])
			winDrift += moved
		}
		want += winDrift
	}
	if ctl.ModelDrift != want {
		problems = append(problems, fmt.Sprintf(
			"recorded model drift %v does not match an independent replay of the observations (%v) — stale or extra centroid updates",
			ctl.ModelDrift, want))
	}
	return problems
}

// RunElasticTrial generates and checks one elastic trial, returning nil on
// pass.
func RunElasticTrial(seed uint64) *ElasticViolation {
	es := GenElasticScenario(seed)
	if problems := CheckElasticScenario(es); len(problems) > 0 {
		return &ElasticViolation{Scenario: es, Problems: problems}
	}
	return nil
}
