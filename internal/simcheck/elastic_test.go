package simcheck

import (
	"encoding/json"
	"strings"
	"testing"

	"v10/internal/collocate"
	"v10/internal/ctlplane"
	"v10/internal/fleet"
)

// elasticRunForTest materializes and runs one elastic scenario the same way
// the checker does, for liveliness counting and mutation seed searches.
func elasticRunForTest(t *testing.T, es *ElasticScenario) *fleet.Result {
	t.Helper()
	arr, err := es.arrivals()
	if err != nil {
		t.Fatalf("seed %d: traffic: %v", es.Seed, err)
	}
	ws := es.buildWorkloads()
	var model *collocate.Model
	if es.Recluster {
		if model, err = es.trainModel(ws); err != nil {
			t.Fatalf("seed %d: training: %v", es.Seed, err)
		}
	}
	res, _ := fleet.Run(ws, es.options(arr, model))
	return res
}

// TestElasticTrials is the in-package slice of the elastic gate (CI runs the
// full 200-trial sweep through cmd/v10check -elastic): every seeded random
// autoscaling trial must conserve requests through drains, replay its control
// decisions cleanly, keep events consistent with metrics, and rerun
// bit-identically.
func TestElasticTrials(t *testing.T) {
	n := uint64(30)
	if testing.Short() {
		n = 10
	}
	for seed := uint64(0); seed < n; seed++ {
		if v := RunElasticTrial(seed); v != nil {
			j, _ := json.MarshalIndent(v, "", "  ")
			t.Fatalf("elastic seed %d:\n%s", seed, j)
		}
	}
}

func TestGenElasticScenarioDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		a, _ := json.Marshal(GenElasticScenario(seed))
		b, _ := json.Marshal(GenElasticScenario(seed))
		if string(a) != string(b) {
			t.Fatalf("seed %d: scenario generation is not deterministic", seed)
		}
	}
}

// TestElasticTrialsCoverScaling guards the generator against regressing into
// triviality: across a modest seed range the trials must actually exercise
// the control plane — scale-ups, drains with readmissions, predictive
// admission, online re-clustering with nonzero drift, and tenant churn.
func TestElasticTrialsCoverScaling(t *testing.T) {
	var ups, downs, readmits, predictive, drifted, churned int
	for seed := uint64(0); seed < 25; seed++ {
		es := GenElasticScenario(seed)
		if es.Admission == string(fleet.AdmitPredictive) {
			predictive++
		}
		for _, spec := range es.Traffic {
			if spec.StartCycle > 0 || spec.EndCycle > 0 {
				churned++
			}
		}
		res := elasticRunForTest(t, es)
		if res == nil || res.Control == nil {
			continue
		}
		ups += res.Control.ScaleUps
		downs += res.Control.ScaleDowns
		readmits += res.Control.Readmitted
		if res.Control.ModelDrift > 0 {
			drifted++
		}
	}
	if ups == 0 {
		t.Error("no scale-ups across 25 elastic trials")
	}
	if downs == 0 {
		t.Error("no scale-downs across 25 elastic trials")
	}
	if readmits == 0 {
		t.Error("no drain readmissions across 25 elastic trials")
	}
	if predictive == 0 {
		t.Error("no predictive-admission trials across 25 scenarios")
	}
	if drifted == 0 {
		t.Error("no re-clustering trial accumulated model drift across 25 scenarios")
	}
	if churned == 0 {
		t.Error("no churning tenants across 25 scenarios")
	}
}

// findElasticSeed scans seeds until the natural run satisfies the predicate;
// mutation tests use it to pick a trial where the injected bug is observable.
func findElasticSeed(t *testing.T, limit uint64, ok func(*ElasticScenario, *fleet.Result) bool) *ElasticScenario {
	t.Helper()
	for seed := uint64(0); seed < limit; seed++ {
		es := GenElasticScenario(seed)
		res := elasticRunForTest(t, es)
		if res != nil && res.Control != nil && ok(es, res) {
			return es
		}
	}
	t.Fatalf("no seed below %d satisfies the mutation-test predicate", limit)
	return nil
}

func requireProblem(t *testing.T, problems []string, substr string) {
	t.Helper()
	for _, p := range problems {
		if strings.Contains(p, substr) {
			return
		}
	}
	t.Fatalf("no oracle names the injected bug (want substring %q), got: %v", substr, problems)
}

// TestElasticMutationIgnoredCooldownCaught injects a controller that scales
// again immediately after a scale event — the cooldown-discipline oracle must
// name the violated rule.
func TestElasticMutationIgnoredCooldownCaught(t *testing.T) {
	scaleIdx := func(res *fleet.Result) []int {
		var idx []int
		for i, d := range res.Control.Decisions {
			if d.Kind == ctlplane.DecideScaleUp || d.Kind == ctlplane.DecideScaleDown {
				idx = append(idx, i)
			}
		}
		return idx
	}
	es := findElasticSeed(t, 40, func(_ *ElasticScenario, res *fleet.Result) bool {
		return len(scaleIdx(res)) >= 2
	})
	problems := checkElastic(es, nil, func(res *fleet.Result) {
		idx := scaleIdx(res)
		res.Control.Decisions[idx[1]].AtCycle = res.Control.Decisions[idx[0]].AtCycle + 1
	})
	requireProblem(t, problems, "cooldown violated")
}

// TestElasticMutationDrainLeakCaught injects a drain path that loses one
// victim request (readmitted but never accounted) — the conservation oracle
// must flag the leak.
func TestElasticMutationDrainLeakCaught(t *testing.T) {
	es := findElasticSeed(t, 40, func(_ *ElasticScenario, res *fleet.Result) bool {
		for _, ts := range res.Tenants {
			if ts.Readmitted > 0 {
				return true
			}
		}
		return false
	})
	problems := checkElastic(es, nil, func(res *fleet.Result) {
		for i := range res.Tenants {
			if res.Tenants[i].Readmitted > 0 {
				res.Tenants[i].Readmitted--
				return
			}
		}
	})
	requireProblem(t, problems, "leaked during drain")
}

// TestElasticMutationStaleCentroidCaught injects an advisor that silently
// stops updating centroids as the mix churns (drift frozen at zero) — the
// recluster-consistency replay must contradict it.
func TestElasticMutationStaleCentroidCaught(t *testing.T) {
	es := findElasticSeed(t, 60, func(es *ElasticScenario, res *fleet.Result) bool {
		return es.Recluster && res.Control.ModelDrift > 0
	})
	problems := checkElastic(es, nil, func(res *fleet.Result) {
		res.Control.ModelDrift = 0
	})
	requireProblem(t, problems, "stale")
}

// TestElasticMutationEstimateSkewCaught injects admission estimates off by
// 2x — the estimate-consistency oracle recomputes them from the trace and
// must flag the skew.
func TestElasticMutationEstimateSkewCaught(t *testing.T) {
	es := GenElasticScenario(0)
	problems := checkElastic(es, func(o *fleet.Options) {
		o.EstimateScale = 2
	}, nil)
	requireProblem(t, problems, "skewed")
}

// TestElasticMutationDroppedEventCaught injects a tracer that swallows
// scale-up events — the event-consistency oracle must notice the timeline
// and the metrics disagree. (Events are attached by the checker itself, so
// the injection corrupts the result's view instead.)
func TestElasticMutationDroppedEventCaught(t *testing.T) {
	es := findElasticSeed(t, 40, func(_ *ElasticScenario, res *fleet.Result) bool {
		return res.Control.ScaleUps > 0
	})
	problems := checkElastic(es, nil, func(res *fleet.Result) {
		res.Control.ScaleUps++
	})
	requireProblem(t, problems, "scale-up event")
}

func TestElasticViolationError(t *testing.T) {
	v := &ElasticViolation{
		Scenario: &ElasticScenario{Seed: 9},
		Problems: []string{"first problem", "second problem"},
	}
	msg := v.Error()
	for _, want := range []string{"seed 9", "2 problem(s)", "first problem"} {
		if !strings.Contains(msg, want) {
			t.Errorf("violation error %q missing %q", msg, want)
		}
	}
}

// TestElasticScenarioRoundTrips guards the repro-file path: a scenario must
// survive JSON round-tripping bit-for-bit so a failing seed replays from
// disk.
func TestElasticScenarioRoundTrips(t *testing.T) {
	es := GenElasticScenario(3)
	j, err := json.Marshal(es)
	if err != nil {
		t.Fatal(err)
	}
	var back ElasticScenario
	if err := json.Unmarshal(j, &back); err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(&back)
	if string(j) != string(j2) {
		t.Fatal("elastic scenario does not round-trip through JSON")
	}
	if problems := CheckElasticScenario(&back); len(problems) > 0 {
		t.Fatalf("round-tripped scenario fails its own check: %v", problems)
	}
}
