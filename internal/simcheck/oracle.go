package simcheck

import (
	"fmt"
	"reflect"

	"v10/internal/metrics"
	"v10/internal/obs"
	"v10/internal/trace"
)

// fluidCycles mirrors the fluid pool's completion arithmetic for a task
// running alone: rate 1 unless the operator's bandwidth demand exceeds
// capacity, then capacity/demand, with sim's exact epsilon-ceiling rounding.
// Computed independently here so the serial oracle does not trust the code
// under test.
func fluidCycles(op trace.Op, capacity float64) int64 {
	work := float64(op.Compute)
	if work <= 0 {
		work = 1e-9
	}
	rate := 1.0
	if op.Compute > 0 {
		demand := op.HBMBytes / float64(op.Compute)
		if demand > capacity {
			rate = capacity / demand
		}
	}
	q := work/rate - 1e-9
	if q <= 0 {
		return 0
	}
	ic := float64(int64(q))
	if q > ic {
		return int64(ic) + 1
	}
	return int64(ic)
}

// serialExpectation returns the tiled operator stream and the exact
// uncontended per-request cycle count for workload wi under the scheme.
func serialExpectation(sc *Scenario, scheme string, wi int) ([]trace.Op, int64) {
	reload := sc.VMemReloadFactor
	if reload == 0 {
		reload = 0.5
	}
	lat := sc.DispatchLatency
	if scheme == SchemePMT {
		reload = 0.5
		lat = 0
	}
	part := sc.Config.VMemBytes / int64(len(sc.Workloads))
	g := trace.TileForVMem(sc.Workloads[wi].graph(), part, reload)
	ops := g.Linearize()
	capacity := sc.Config.HBMBytesPerCycle()
	var perReq int64
	for _, op := range ops {
		perReq += op.Stall + lat + fluidCycles(op, capacity)
	}
	return ops, perReq
}

// checkSerial is the single-workload differential oracle: with no tenant to
// contend with, every scheme must behave exactly like serial execution — no
// preemptions, makespan = requests x the independently computed per-request
// time, and every traced stall/run span matching the operator it executes.
func checkSerial(sc *Scenario, out *Outcome) []string {
	if len(sc.Workloads) != 1 || sc.ArrivalRateHz > 0 || sc.ArrivalCycles != nil ||
		out.Result == nil || out.Err != nil {
		return nil
	}
	var problems []string
	ops, perReq := serialExpectation(sc, out.Scheme, 0)
	res := out.Result
	if want := int64(sc.Requests) * perReq; res.TotalCycles != want {
		problems = append(problems, fmt.Sprintf(
			"serial oracle: makespan %d, expected %d requests x %d cycles = %d",
			res.TotalCycles, sc.Requests, perReq, want))
	}
	st := res.Workloads[0]
	if st.Preemptions != 0 {
		problems = append(problems, fmt.Sprintf("serial oracle: %d preemptions with a single workload", st.Preemptions))
	}
	for i, lat := range st.LatencyCycles {
		if lat != float64(perReq) {
			problems = append(problems, fmt.Sprintf("serial oracle: request %d latency %g, expected %d", i, lat, perReq))
			break
		}
	}
	capacity := sc.Config.HBMBytesPerCycle()
	runSeg, stallSeg := 0, 0
	for _, e := range out.Events {
		switch e.Type {
		case obs.EvRunSegment:
			op := ops[runSeg%len(ops)]
			if want := fluidCycles(op, capacity); e.Dur != want {
				problems = append(problems, fmt.Sprintf(
					"serial oracle: run segment %d spans %d cycles, op %d computes in %d", runSeg, e.Dur, runSeg%len(ops), want))
				return problems
			}
			runSeg++
		case obs.EvStall:
			op := ops[stallSeg%len(ops)]
			if e.Dur != op.Stall {
				problems = append(problems, fmt.Sprintf(
					"serial oracle: stall %d spans %d cycles, op %d stalls %d", stallSeg, e.Dur, stallSeg%len(ops), op.Stall))
				return problems
			}
			stallSeg++
		}
	}
	return problems
}

// statsEqual compares two workload measurements field-by-field, ignoring the
// display name (clone-symmetry runs swap names, nothing else).
func statsEqual(a, b *metrics.WorkloadStats) bool {
	x, y := *a, *b
	x.Name, y.Name = "", ""
	return reflect.DeepEqual(x, y)
}

// checkCloneSymmetry is the exact permutation oracle for clone scenarios:
// with identical workloads at identical priorities, submission order is the
// only difference — so running the set reversed must reproduce the forward
// run index-for-index (all tie-breaks are index-based and deterministic).
func checkCloneSymmetry(fwd, rev *Outcome) []string {
	var problems []string
	if (fwd.Err == nil) != (rev.Err == nil) {
		return append(problems, fmt.Sprintf("clone oracle: forward err %v, reversed err %v", fwd.Err, rev.Err))
	}
	if fwd.Result == nil || rev.Result == nil {
		return problems
	}
	if fwd.Result.TotalCycles != rev.Result.TotalCycles {
		problems = append(problems, fmt.Sprintf(
			"clone oracle: forward makespan %d, reversed %d", fwd.Result.TotalCycles, rev.Result.TotalCycles))
	}
	if len(fwd.Result.Workloads) == len(rev.Result.Workloads) {
		for i := range fwd.Result.Workloads {
			if !statsEqual(fwd.Result.Workloads[i], rev.Result.Workloads[i]) {
				problems = append(problems, fmt.Sprintf(
					"clone oracle: workload slot %d measured differently forward (%+v) vs reversed (%+v)",
					i, fwd.Result.Workloads[i], rev.Result.Workloads[i]))
				break
			}
		}
	}
	return problems
}

// fairnessFloor is the minimum per-workload ActiveCycles below which ratio
// comparisons drown in integer noise and are skipped.
const fairnessFloor = 5000

// checkCloneFairness bounds intra-run completion skew between clones under
// the V10 schemes: with operator-granular scheduling, identical workloads at
// equal priority must finish their request quota at comparable times. The
// metric is the sum of request latencies (closed loop: the cycle the last
// counted request completed) — raw ActiveCycles is unusable because an
// early-finishing clone over-serves until the slowest one is done. PMT is
// exempt: with a quantum far above a clone's service time, whole slices of
// over-service before the last clone's first slice are exactly the coarse-
// grained unfairness the paper ascribes to it.
func checkCloneFairness(out *Outcome, bound float64) []string {
	if out.Result == nil || out.Err != nil || out.Scheme == SchemePMT {
		return nil
	}
	lo, hi := -1.0, -1.0
	for _, st := range out.Result.Workloads {
		t := sumLatency(st)
		if lo < 0 || t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	// Worst legitimate case: requests dominated by one huge non-preemptible
	// operator complete in pure rotation, so the last of n clones finishes
	// ~n× after the first. Scale the bound accordingly.
	if n := float64(len(out.Result.Workloads)); bound < n+1 {
		bound = n + 1
	}
	if lo < fairnessFloor {
		return nil
	}
	if hi > bound*lo {
		return []string{fmt.Sprintf(
			"clone fairness: request-quota completion spread %g..%g exceeds %gx between identical equal-priority workloads",
			lo, hi, bound)}
	}
	return nil
}

// checkPermutationFair is the bounded permutation oracle for heterogeneous
// equal-priority sets: reversing submission order must not change any
// workload's completion time or the makespan by more than the bound. The
// per-workload metric is the sum of request latencies — in the closed loop
// latencies telescope, so the sum is exactly when the last counted request
// finished. (ActiveCycles is NOT comparable across orders: over-serving keeps
// fast workloads accumulating service until the slowest tenant finishes, so
// their totals legitimately depend on submission order.)
// Submission order can phase-shift any workload's completion by up to one
// full rotation of every tenant's request (a tiny workload scheduled last
// waits out everyone else's non-preemptible operators), so the comparison
// allows an additive one-rotation slack on top of the multiplicative bound.
func checkPermutationFair(sc *Scenario, fwd, rev *Outcome, latencyBound, makespanBound float64) []string {
	var problems []string
	if (fwd.Err == nil) != (rev.Err == nil) {
		return append(problems, fmt.Sprintf("permutation oracle: forward err %v, reversed err %v", fwd.Err, rev.Err))
	}
	if fwd.Result == nil || rev.Result == nil || fwd.Err != nil {
		return problems
	}
	var slack float64
	for wi := range sc.Workloads {
		_, perReq := serialExpectation(sc, fwd.Scheme, wi)
		slack += float64(perReq)
	}
	if fwd.Scheme == SchemePMT {
		// PMT rotates in whole-core quanta, not operators: going last costs
		// up to a full rotation of everyone's slice plus switch overhead.
		quantum := sc.PMTQuantum
		if quantum <= 0 {
			quantum = 1_400_000
		}
		slack += float64(len(sc.Workloads)) * float64(quantum+sc.Config.PMTContextSwitchCycles(1))
	}
	f, r := float64(fwd.Result.TotalCycles), float64(rev.Result.TotalCycles)
	if f > fairnessFloor && r > fairnessFloor {
		if f > makespanBound*r+slack || r > makespanBound*f+slack {
			problems = append(problems, fmt.Sprintf(
				"permutation oracle: makespan %g forward vs %g reversed (> %gx + one rotation apart)", f, r, makespanBound))
		}
	}
	byName := map[string]*metrics.WorkloadStats{}
	for _, st := range rev.Result.Workloads {
		byName[st.Name] = st
	}
	for _, st := range fwd.Result.Workloads {
		rst := byName[st.Name]
		if rst == nil {
			problems = append(problems, fmt.Sprintf("permutation oracle: workload %s missing from reversed run", st.Name))
			continue
		}
		a, b := sumLatency(st), sumLatency(rst)
		if a < fairnessFloor || b < fairnessFloor {
			continue
		}
		if a > latencyBound*b+slack || b > latencyBound*a+slack {
			problems = append(problems, fmt.Sprintf(
				"permutation oracle: %s finished its requests at cycle %g forward vs %g reversed (> %gx + one rotation apart)",
				st.Name, a, b, latencyBound))
		}
	}
	return problems
}

// sumLatency totals a workload's request latencies. Closed loop: the cycle
// its last counted request completed.
func sumLatency(st *metrics.WorkloadStats) float64 {
	var t float64
	for _, l := range st.LatencyCycles {
		t += l
	}
	return t
}

// checkDeterminism reruns one scheme and requires a bit-identical result and
// event stream: the simulator's contract is full determinism per seed.
func checkDeterminism(a, b *Outcome) []string {
	var problems []string
	if (a.Err == nil) != (b.Err == nil) {
		return append(problems, fmt.Sprintf("determinism oracle: first run err %v, rerun err %v", a.Err, b.Err))
	}
	if !reflect.DeepEqual(a.Result, b.Result) {
		problems = append(problems, "determinism oracle: rerunning the same scheme produced a different result")
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		problems = append(problems, fmt.Sprintf(
			"determinism oracle: rerun emitted %d events vs %d, or with different contents", len(b.Events), len(a.Events)))
	}
	return problems
}
