package simcheck

import (
	"testing"

	"v10/internal/fleet"
)

// noisyArms runs the three arms of a noisy-neighbor comparison for one
// seeded scenario: the victim alone on its slice, the victim with the
// aggressors under enforced slicing, and the victim with the aggressors on
// the bare core (V10 temporal interleaving only — no templates, no
// ceilings, no token bucket). All three arms share the scenario's arrival
// schedules, so the only variable is enforcement.
type noisyArms struct {
	scenario *IsolationScenario
	alone    *fleet.Result
	sliced   *fleet.Result
	unsliced *fleet.Result
}

func runNoisyArms(t *testing.T, seed uint64) noisyArms {
	t.Helper()
	is := GenIsolationScenario(seed)
	sc := &Scenario{Config: is.Config, Workloads: is.Workloads}
	n := len(is.Workloads)

	alone, err := fleet.Run(sc.BuildWorkloads()[:1], is.options(1))
	if err != nil {
		t.Fatalf("seed %d victim-alone run: %v", seed, err)
	}
	sliced, err := fleet.Run(sc.BuildWorkloads(), is.options(n))
	if err != nil {
		t.Fatalf("seed %d sliced run: %v", seed, err)
	}
	bare := is.options(n)
	bare.VNPUTemplates = nil
	bare.SliceWindowCycles = 0
	bare.PinnedSlices = nil
	unsliced, err := fleet.Run(sc.BuildWorkloads(), bare)
	if err != nil {
		t.Fatalf("seed %d unsliced run: %v", seed, err)
	}
	return noisyArms{scenario: is, alone: alone, sliced: sliced, unsliced: unsliced}
}

// TestNoisyNeighborRegression is the table-driven victim/aggressor suite:
// for each aggressor archetype it pins how far the victim's p99 may move
// under enforced slicing (barely at all — the virtual per-slice engine sets
// decouple the victim completely, so its sliced tail equals its alone tail
// up to the containment slack), and, where the archetype is violent enough,
// that removing enforcement demonstrably hurts the victim. The ratios are
// regression pins, not physics: if enforcement weakens, slicedMax trips; if
// the aggressors stop aggressing (generator drift), unslicedMin trips.
func TestNoisyNeighborRegression(t *testing.T) {
	cases := []struct {
		name string
		seed uint64
		// aggressor documents (and asserts) the archetype the seed rotates to.
		aggressor string
		// slicedMax bounds victim p99 under slicing as a multiple of alone p99.
		slicedMax float64
		// unslicedMin, when nonzero, requires the bare-core victim p99 to be at
		// least this multiple of alone p99 — proof the aggressor actually bites
		// and only enforcement is saving the victim.
		unslicedMin float64
		// wantThrottle requires the aggressor slice to have hit the token
		// bucket (stall-not-shed throttling observed).
		wantThrottle bool
	}{
		{name: "hbm-flood", seed: 0, aggressor: "hbm-flood", slicedMax: 1.05, unslicedMin: 1.5, wantThrottle: true},
		{name: "vmem-hog", seed: 1, aggressor: "vmem-hog", slicedMax: 1.05, wantThrottle: true},
		{name: "flash-crowd", seed: 2, aggressor: "flash-crowd", slicedMax: 1.05},
		{name: "hbm-flood-alt", seed: 9, aggressor: "hbm-flood", slicedMax: 1.05, unslicedMin: 1.5, wantThrottle: true},
		{name: "vmem-hog-alt", seed: 4, aggressor: "vmem-hog", slicedMax: 1.05, wantThrottle: true},
		{name: "flash-crowd-alt", seed: 5, aggressor: "flash-crowd", slicedMax: 1.05},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			arms := runNoisyArms(t, tc.seed)
			is := arms.scenario
			if is.Aggressor != tc.aggressor {
				t.Fatalf("seed %d generates %s, table expects %s", tc.seed, is.Aggressor, tc.aggressor)
			}
			alone := arms.alone.Tenants[0]
			slicedV := arms.sliced.Tenants[0]
			unslicedV := arms.unsliced.Tenants[0]
			if alone.Completed == 0 || slicedV.Completed == 0 || unslicedV.Completed == 0 {
				t.Fatalf("victim starved: alone %d, sliced %d, unsliced %d completions",
					alone.Completed, slicedV.Completed, unslicedV.Completed)
			}
			slicedRatio := slicedV.P99LatencyCycles / alone.P99LatencyCycles
			unslicedRatio := unslicedV.P99LatencyCycles / alone.P99LatencyCycles
			t.Logf("alone p99 %.0f; sliced ratio %.3f; unsliced ratio %.3f",
				alone.P99LatencyCycles, slicedRatio, unslicedRatio)

			limit := tc.slicedMax*alone.P99LatencyCycles + float64(is.SlackCycles)
			if slicedV.P99LatencyCycles > limit {
				t.Errorf("sliced victim p99 %.0f exceeds %.0f (%.2f × alone %.0f + %d slack)",
					slicedV.P99LatencyCycles, limit, tc.slicedMax, alone.P99LatencyCycles, is.SlackCycles)
			}
			if tc.unslicedMin > 0 && unslicedRatio < tc.unslicedMin {
				t.Errorf("unsliced victim p99 ratio %.2f below %.2f: the %s aggressor no longer "+
					"pressures the bare core, so this scenario proves nothing about enforcement",
					unslicedRatio, tc.unslicedMin, is.Aggressor)
			}

			var stalls, capHits int64
			for _, ss := range arms.sliced.Cores[0].Slices {
				stalls += ss.ThrottleStalls
				capHits += ss.CapHits
			}
			t.Logf("sliced arm: %d throttle stalls, %d cap hits", stalls, capHits)
			if tc.wantThrottle && stalls == 0 {
				t.Errorf("%s aggressor never hit the token bucket: the throttle path is untested by this scenario", is.Aggressor)
			}
			for _, ss := range arms.unsliced.Cores[0].Slices {
				t.Fatalf("unsliced run reported slice stats %+v", ss)
			}
		})
	}
}

// TestNoisyNeighborVictimThroughputPreserved pins the other half of the
// contract: slicing protects the victim's completions as well as its tail.
// Every request the victim completes alone must also complete next to the
// flood when slicing is on (the arrival schedules are identical).
func TestNoisyNeighborVictimThroughputPreserved(t *testing.T) {
	for _, seed := range []uint64{0, 1, 2} {
		arms := runNoisyArms(t, seed)
		alone := arms.alone.Tenants[0]
		sliced := arms.sliced.Tenants[0]
		if sliced.Completed < alone.Completed {
			t.Errorf("seed %d (%s): victim completed %d sliced vs %d alone",
				seed, arms.scenario.Aggressor, sliced.Completed, alone.Completed)
		}
	}
}
