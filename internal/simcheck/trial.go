package simcheck

import (
	"errors"
	"fmt"

	"v10/internal/baseline"
	"v10/internal/metrics"
	"v10/internal/obs"
	"v10/internal/sched"
)

// EventLog is a Tracer that records the full event stream in memory, for the
// oracles (serial timing, determinism) and for Chrome-trace export of repros.
// It aliases obs.Log, which the fleet runner shares for per-core capture.
type EventLog = obs.Log

// Outcome is one scheme's run: its result, full event stream, and every
// invariant the Checker flagged.
type Outcome struct {
	Scheme   string
	Result   *metrics.RunResult
	Events   []obs.Event
	Problems []string
	Err      error
}

// Violation is a failed trial: the (possibly minimized) scenario plus every
// oracle and invariant message. It serializes to a repro file that v10check
// -replay and the fuzz targets re-execute byte-for-byte.
type Violation struct {
	Scenario *Scenario `json:"scenario"`
	Problems []string  `json:"problems"`
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("simcheck: seed %d: %d problem(s), first: %s",
		v.Scenario.Seed, len(v.Problems), v.Problems[0])
}

// RunScheme executes one scheme over the scenario with the invariant checker
// riding the tracer hook, recovering panics into problems. reversed flips the
// workload submission order (the permutation oracles' second run).
func RunScheme(sc *Scenario, scheme string, reversed bool) (out *Outcome) {
	out = &Outcome{Scheme: scheme}
	ck := NewChecker(sc, scheme, reversed)
	log := &EventLog{}

	defer func() {
		out.Events = log.Events
		if r := recover(); r != nil {
			out.Problems = append(out.Problems, fmt.Sprintf("panic: %v", r))
		}
	}()

	res, err := Execute(sc, scheme, reversed, obs.Multi(ck, log))
	out.Result = res
	out.Err = err
	if err != nil && !errors.Is(err, sched.ErrMaxCycles) {
		out.Problems = append(out.Problems, fmt.Sprintf("run error: %v", err))
	}
	out.Problems = append(out.Problems, ck.Finalize(res, err)...)
	return out
}

// Execute runs one scheme over the scenario with an arbitrary tracer and no
// checking — the raw substrate under RunScheme, also used by the mutation
// tests to wedge fault-injecting tracers between runner and checker.
func Execute(sc *Scenario, scheme string, reversed bool, tracer obs.Tracer) (*metrics.RunResult, error) {
	wls := sc.buildWorkloads(reversed)
	if scheme == SchemePMT {
		policy := baseline.PMTRoundRobin
		if sc.PMTPrema {
			policy = baseline.PMTPrema
		}
		return baseline.RunPMT(wls, baseline.PMTOptions{
			Config:              sc.Config,
			Policy:              policy,
			Quantum:             sc.PMTQuantum,
			RequestsPerWorkload: sc.Requests,
			MaxCycles:           sc.MaxCycles,
			Seed:                sc.Seed,
			WeightByPriority:    sc.PMTWeighted,
			Tracer:              tracer,
		})
	}
	opts := sched.Options{
		Config:              sc.Config,
		RequestsPerWorkload: sc.Requests,
		MaxCycles:           sc.MaxCycles,
		PreemptMargin:       sc.PreemptMargin,
		VMemReloadFactor:    sc.VMemReloadFactor,
		DispatchLatency:     sc.DispatchLatency,
		ArrivalRateHz:       sc.ArrivalRateHz,
		ArrivalCycles:       sc.ArrivalCycles,
		Seed:                sc.Seed,
		Tracer:              tracer,
	}
	switch scheme {
	case SchemeBase:
		opts.Policy = sched.RoundRobin
	case SchemeFair:
		opts.Policy = sched.Priority
	case SchemeFull:
		opts.Policy = sched.Priority
		opts.Preemption = true
	default:
		return nil, fmt.Errorf("simcheck: unknown scheme %q", scheme)
	}
	return sched.Run(wls, opts)
}

// CheckScenario runs every scheme the scenario names through the invariant
// checker and the differential oracles, returning nil when all pass.
func CheckScenario(sc *Scenario) *Violation {
	var problems []string
	report := func(scheme string, msgs []string) {
		for _, m := range msgs {
			problems = append(problems, scheme+": "+m)
		}
	}

	outs := make([]*Outcome, len(sc.Schemes))
	for i, scheme := range sc.Schemes {
		out := RunScheme(sc, scheme, false)
		outs[i] = out
		report(scheme, out.Problems)
		if errors.Is(out.Err, sched.ErrMaxCycles) {
			report(scheme, []string{fmt.Sprintf(
				"livelock: exceeded the generous %d-cycle budget without serving every workload", sc.MaxCycles)})
		}
		report(scheme, checkSerial(sc, out))
		report(scheme, checkScheduleConformance(sc, out))
	}

	// Determinism: re-executing the first scheme must be bit-identical.
	report(sc.Schemes[0], checkDeterminism(outs[0], RunScheme(sc, sc.Schemes[0], false)))

	// Permutation oracles: compare each scheme against a reversed-order run.
	// Clone sets get the exact oracle; heterogeneous equal-priority sets the
	// bounded one, but only in the closed loop (open-loop arrival streams are
	// seeded by run-order index, so reversing reassigns arrival patterns and
	// per-name latencies legitimately change). Skewed priorities
	// intentionally change per-order service and are excluded entirely.
	// Explicit schedules are bound to workload *positions*, so a reversed run
	// pairs each workload with a different schedule and per-name outcomes
	// legitimately change — skip the order-permutation oracles entirely.
	if len(sc.Workloads) >= 2 && sc.equalPriorities() && sc.ArrivalCycles == nil {
		for i, scheme := range sc.Schemes {
			rev := RunScheme(sc, scheme, true)
			report(scheme+" (reversed)", rev.Problems)
			if sc.Clones {
				report(scheme, checkCloneSymmetry(outs[i], rev))
				if sc.ArrivalRateHz == 0 {
					// Open-loop clone completion times are dominated by each
					// clone's independent arrival draws, not by scheduling.
					report(scheme, checkCloneFairness(outs[i], cloneFairBound))
				}
			} else if sc.ArrivalRateHz == 0 {
				report(scheme, checkPermutationFair(sc, outs[i], rev, permLatencyBound, permMakespanBound))
			}
		}
	}

	if len(problems) == 0 {
		return nil
	}
	return &Violation{Scenario: sc, Problems: problems}
}

// Fairness-oracle bounds, validated over large seed sweeps with headroom (see
// TestTrialSweep). Tightening them is the easiest way to make the harness
// more sensitive — at the cost of false positives on degenerate mixes.
const (
	cloneFairBound    = 3.0
	permLatencyBound  = 4.0
	permMakespanBound = 2.0
)

// RunTrial generates the scenario for a seed and checks it. A generator
// emitting an invalid scenario is itself reported as a violation.
func RunTrial(seed uint64) *Violation {
	sc := GenScenario(seed)
	if err := sc.Validate(); err != nil {
		return &Violation{Scenario: sc, Problems: []string{"generator produced invalid scenario: " + err.Error()}}
	}
	return CheckScenario(sc)
}
