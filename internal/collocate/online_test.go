package collocate

import (
	"reflect"
	"testing"
)

func trainedZooModel(t *testing.T) (*Model, []Features) {
	t.Helper()
	ws, fs := zoo(t, []int{8, 32})
	m, err := Train(ws, fs, fakePerf, TrainConfig{K: 4, PairSamples: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m, fs
}

func TestObserveRequiresClone(t *testing.T) {
	m, fs := trainedZooModel(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Observe on the shared trained model did not panic")
		}
	}()
	m.Observe(fs[0])
}

func TestCloneForOnlineIsolatesCentroids(t *testing.T) {
	m, fs := trainedZooModel(t)
	clone := m.CloneForOnline()
	// Record the original's predictions, then push the clone hard toward one
	// observation; the original must keep answering identically.
	before := make([]int, len(fs))
	for i, f := range fs {
		before[i] = m.PredictCluster(f)
	}
	for i := 0; i < 50; i++ {
		clone.Observe(fs[0])
	}
	for i, f := range fs {
		if got := m.PredictCluster(f); got != before[i] {
			t.Fatalf("original model drifted: instance %d moved cluster %d -> %d", i, before[i], got)
		}
	}
	drift, n := clone.OnlineDrift()
	if n != 50 {
		t.Fatalf("observation count %d, want 50", n)
	}
	if drift <= 0 {
		t.Fatal("no drift accumulated on the clone")
	}
	if d0, n0 := m.OnlineDrift(); d0 != 0 || n0 != 0 {
		t.Fatalf("original accumulated online state: drift %v obs %d", d0, n0)
	}
}

func TestObserveLearningRateDecays(t *testing.T) {
	m, fs := trainedZooModel(t)
	clone := m.CloneForOnline()
	// Repeatedly observing the same point converges: each step moves the
	// centroid strictly less than the last (lr = 1/(count+1) shrinks and the
	// distance shrinks too).
	_, prev := clone.Observe(fs[0])
	for i := 0; i < 10; i++ {
		_, moved := clone.Observe(fs[0])
		if moved >= prev && prev > 0 {
			t.Fatalf("step %d: movement %v did not shrink from %v", i, moved, prev)
		}
		prev = moved
	}
}

func TestObserveBatchMatchesSequentialObserve(t *testing.T) {
	m, fs := trainedZooModel(t)
	a := m.CloneForOnline()
	b := m.CloneForOnline()
	total := 0.0
	for _, f := range fs {
		_, moved := a.Observe(f)
		total += moved
	}
	if got := b.ObserveBatch(fs); got != total {
		t.Fatalf("ObserveBatch %v != sequential total %v", got, total)
	}
	da, na := a.OnlineDrift()
	db, nb := b.OnlineDrift()
	if da != db || na != nb {
		t.Fatalf("divergent online state: (%v,%d) vs (%v,%d)", da, na, db, nb)
	}
}

func TestCloneOfCloneCarriesOnlineState(t *testing.T) {
	m, fs := trainedZooModel(t)
	c1 := m.CloneForOnline()
	c1.ObserveBatch(fs[:3])
	d1, n1 := c1.OnlineDrift()
	c2 := c1.CloneForOnline()
	d2, n2 := c2.OnlineDrift()
	if d1 != d2 || n1 != n2 {
		t.Fatalf("re-clone lost online state: (%v,%d) vs (%v,%d)", d1, n1, d2, n2)
	}
	// And the two streams are independent from here on.
	c2.ObserveBatch(fs[3:])
	if d, n := c1.OnlineDrift(); d != d1 || n != n1 {
		t.Fatalf("observing the re-clone mutated its parent: (%v,%d)", d, n)
	}
}

func TestOnlineUpdatesAreDeterministic(t *testing.T) {
	m, fs := trainedZooModel(t)
	run := func() ([]int, []float64) {
		c := m.CloneForOnline()
		var cl []int
		var mv []float64
		for _, f := range fs {
			a, b := c.Observe(f)
			cl, mv = append(cl, a), append(mv, b)
		}
		return cl, mv
	}
	c1, m1 := run()
	c2, m2 := run()
	if !reflect.DeepEqual(c1, c2) || !reflect.DeepEqual(m1, m2) {
		t.Fatal("online update stream is not bit-identical across reruns")
	}
}

func TestWithThresholdClones(t *testing.T) {
	m, feats := trainedZooModel(t)
	orig := m.Threshold()
	hi := m.WithThreshold(orig * 10)
	lo := m.WithThreshold(1e-9)
	if m.Threshold() != orig {
		t.Fatalf("receiver mutated: threshold %v, want %v", m.Threshold(), orig)
	}
	if hi.Threshold() != orig*10 || lo.Threshold() != 1e-9 {
		t.Fatalf("thresholds not applied: hi=%v lo=%v", hi.Threshold(), lo.Threshold())
	}
	// The gates must read the new cutoff: at an absurdly high threshold no
	// pair collocates; at a near-zero threshold every pair does.
	for i := range feats {
		for j := i + 1; j < len(feats); j++ {
			if hi.ShouldCollocate(feats[i], feats[j]) {
				t.Fatalf("pair %d+%d collocates above a 10x threshold", i, j)
			}
			if !lo.ShouldCollocate(feats[i], feats[j]) {
				t.Fatalf("pair %d+%d rejected at a near-zero threshold", i, j)
			}
		}
	}
	if m.WithThreshold(0) != m || m.WithThreshold(orig) != m {
		t.Fatal("identity cases should return the receiver")
	}
}
