package collocate

import (
	"math"
	"testing"

	"v10/internal/models"
	"v10/internal/npu"
	"v10/internal/trace"
)

var cfg = npu.DefaultConfig()

// zoo returns workload instances across several model families.
func zoo(t *testing.T, batches []int) ([]*trace.Workload, []Features) {
	t.Helper()
	var ws []*trace.Workload
	var fs []Features
	for i, s := range models.Specs() {
		for _, b := range batches {
			if s.OOM(b, cfg.HBMBytes) {
				continue
			}
			w := s.Workload(b, uint64(i+1), cfg)
			ws = append(ws, w)
			fs = append(fs, ExtractFeatures(w, cfg, 3))
		}
	}
	return ws, fs
}

// fakePerf scores pairs by FU complementarity: SA-heavy + VU-heavy is good,
// same-type pairs are bad. Deterministic, no simulation.
func fakePerf(a, b *trace.Workload) (float64, error) {
	fa := ExtractFeatures(a, cfg, 1)
	fb := ExtractFeatures(b, cfg, 1)
	// Complementary sa_time_frac (feature 7) → higher performance.
	return 1 + math.Abs(fa.Vec[7]-fb.Vec[7]), nil
}

func TestExtractFeaturesShape(t *testing.T) {
	s, _ := models.ByName("BERT")
	w := s.Workload(32, 1, cfg)
	f := ExtractFeatures(w, cfg, 3)
	if len(f.Vec) != len(FeatureNames) {
		t.Fatalf("feature count = %d, want %d", len(f.Vec), len(FeatureNames))
	}
	if f.Name != "BERT-b32" || f.Model != "BERT" {
		t.Fatalf("identity wrong: %q %q", f.Name, f.Model)
	}
	// Utilization features must be fractions.
	for i := 0; i < 3; i++ {
		if f.Vec[i] < 0 || f.Vec[i] > 1 {
			t.Fatalf("feature %s = %v out of [0,1]", FeatureNames[i], f.Vec[i])
		}
	}
	// BERT is SA-heavy.
	if f.Vec[7] < 0.5 {
		t.Fatalf("BERT sa_time_frac = %v, want > 0.5", f.Vec[7])
	}
}

func TestTrainAndPredictClusters(t *testing.T) {
	ws, fs := zoo(t, []int{8, 32})
	m, err := Train(ws, fs, fakePerf, TrainConfig{K: 5, PairSamples: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() < 2 || m.K() > 5 {
		t.Fatalf("cluster count = %d", m.K())
	}
	// Training instances must predict into valid clusters.
	for _, f := range fs {
		c := m.PredictCluster(f)
		if c < 0 || c >= m.K() {
			t.Fatalf("cluster %d out of range", c)
		}
	}
	// Same workload instance → same cluster both times (deterministic).
	if m.PredictCluster(fs[0]) != m.PredictCluster(fs[0]) {
		t.Fatal("PredictCluster nondeterministic")
	}
}

func TestSimilarWorkloadsClusterTogether(t *testing.T) {
	ws, fs := zoo(t, []int{32})
	m, err := Train(ws, fs, fakePerf, TrainConfig{K: 4, PairSamples: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	find := func(name string) Features {
		for _, f := range fs {
			if f.Name == name {
				return f
			}
		}
		t.Fatalf("missing %s", name)
		return Features{}
	}
	// BERT and Transformer are both SA-dominant NLP models with long ops;
	// DLRM is a short-op VU-dominant recommender. BERT should sit closer to
	// Transformer than to DLRM in cluster space.
	bert, tfmr, dlrm := find("BERT-b32"), find("TFMR-b32"), find("DLRM-b32")
	cb, ct, cd := m.PredictCluster(bert), m.PredictCluster(tfmr), m.PredictCluster(dlrm)
	if cb == cd && cb != ct {
		t.Fatalf("BERT clustered with DLRM (%d) but not Transformer (%d)", cd, ct)
	}
}

func TestPredictPerfComplementarity(t *testing.T) {
	ws, fs := zoo(t, []int{8, 32})
	m, err := Train(ws, fs, fakePerf, TrainConfig{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	find := func(name string) Features {
		for _, f := range fs {
			if f.Name == name {
				return f
			}
		}
		t.Fatalf("missing %s", name)
		return Features{}
	}
	bert, dlrm := find("BERT-b32"), find("DLRM-b32")
	tfmr := find("TFMR-b32")
	comp := m.PredictPerf(bert, dlrm) // complementary
	conf := m.PredictPerf(bert, tfmr) // conflicting (both SA-heavy)
	if comp <= conf {
		t.Fatalf("complementary perf %v <= conflicting perf %v", comp, conf)
	}
}

func TestTrainValidation(t *testing.T) {
	ws, fs := zoo(t, []int{32})
	if _, err := Train(ws[:1], fs[:1], fakePerf, TrainConfig{}); err == nil {
		t.Fatal("single-workload training accepted")
	}
	if _, err := Train(ws, fs[:2], fakePerf, TrainConfig{}); err == nil {
		t.Fatal("mismatched features accepted")
	}
}

func TestBaselinePredictors(t *testing.T) {
	a := Features{Vec: []float64{0.5, 0.1, 0.3, 0, 0, 0, 0, 0.9}}
	b := Features{Vec: []float64{0.1, 0.4, 0.4, 0, 0, 0, 0, 0.2}}
	c := Features{Vec: []float64{0.6, 0.2, 0.8, 0, 0, 0, 0, 0.8}}
	d := Features{Vec: []float64{0.9, 0.9, 0.3, 0, 0, 0, 0, 0.5}}

	if !(RandomPolicy{}).Predict(a, c) {
		t.Fatal("Random must always collocate")
	}
	h := HeuristicPolicy{}
	if !h.Predict(a, b) {
		t.Fatal("heuristic should accept a+b (fits)")
	}
	if h.Predict(a, c) {
		t.Fatal("heuristic should reject a+c (HBM oversubscribed)")
	}
	if h.Predict(d, d) {
		t.Fatal("heuristic should reject d+d (aggregate compute oversubscribed)")
	}
	// The heuristic's blind spot (by design, like the paper's): per-FU
	// conflict hidden by aggregation — two SA-saturating workloads fit the
	// aggregate budget.
	e := Features{Vec: []float64{0.8, 0.1, 0.3, 0, 0, 0, 0, 0.9}}
	if !h.Predict(e, e) {
		t.Fatal("aggregate heuristic should (wrongly) accept two SA-heavy workloads")
	}
}

func TestEvaluateConfusion(t *testing.T) {
	pairs := []TestPair{
		{Perf: 1.5}, // positive
		{Perf: 1.4}, // positive
		{Perf: 1.0}, // negative
		{Perf: 0.9}, // negative
	}
	res := Evaluate(RandomPolicy{}, pairs, 1.3)
	if res.Accuracy != 0.5 || res.TPRate != 1 || res.TNRate != 0 || res.FPRate != 1 {
		t.Fatalf("Random eval wrong: %+v", res)
	}
	if res.WorstPerf != 0.9 {
		t.Fatalf("worst perf = %v, want 0.9", res.WorstPerf)
	}
}

type never struct{}

func (never) Name() string               { return "never" }
func (never) Predict(a, b Features) bool { return false }

func TestEvaluateNeverPredictor(t *testing.T) {
	pairs := []TestPair{{Perf: 1.5}, {Perf: 1.0}}
	res := Evaluate(never{}, pairs, 1.3)
	if res.Accuracy != 0.5 || res.TNRate != 1 || res.TPRate != 0 {
		t.Fatalf("never eval wrong: %+v", res)
	}
	if res.WorstPerf != 1 {
		t.Fatalf("no positives → worst should default to 1, got %v", res.WorstPerf)
	}
}

func TestCrossValidateClusteringBeatsRandomBaseRate(t *testing.T) {
	ws, fs := zoo(t, []int{32})
	results, err := CrossValidate(ws, fs, fakePerf, TrainConfig{K: 4, Threshold: 1.3, PairSamples: 6, Seed: 7},
		func(m *Model) []Predictor {
			return []Predictor{RandomPolicy{}, HeuristicPolicy{}, ClusteringPolicy{m}}
		})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]EvalResult{}
	for _, r := range results {
		byName[r.Predictor] = r
	}
	rnd, ok1 := byName["Random"]
	clu, ok2 := byName["Clustering"]
	if !ok1 || !ok2 {
		t.Fatalf("missing predictors in results: %v", results)
	}
	if rnd.N == 0 || clu.N == 0 {
		t.Fatal("no test pairs evaluated")
	}
	if clu.Accuracy <= rnd.Accuracy {
		t.Fatalf("clustering accuracy %v <= random %v", clu.Accuracy, rnd.Accuracy)
	}
	// Random always collocates: TP must be 100%, TN 0 (when both classes occur).
	if rnd.TPRate != 1 {
		t.Fatalf("random TP rate = %v, want 1", rnd.TPRate)
	}
}

func TestCrossValidateNeedsThreeFamilies(t *testing.T) {
	ws, fs := zoo(t, []int{32})
	_, err := CrossValidate(ws[:2], fs[:2], fakePerf, TrainConfig{}, func(m *Model) []Predictor {
		return []Predictor{RandomPolicy{}}
	})
	if err == nil {
		t.Fatal("2-family cross-validation accepted")
	}
}

func TestSimPairPerfComplementaryBeatsConflicting(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed oracle is slow")
	}
	perf := SimPairPerf(cfg, 3)
	bert, _ := models.ByName("BERT")
	dlrm, _ := models.ByName("DLRM")
	tfmr, _ := models.ByName("Transformer")
	b := bert.Workload(32, 1, cfg)
	d := dlrm.Workload(32, 2, cfg)
	tf := tfmr.Workload(32, 3, cfg)

	comp, err := perf(b, d)
	if err != nil {
		t.Fatal(err)
	}
	conf, err := perf(b, tf)
	if err != nil {
		t.Fatal(err)
	}
	if comp <= 1 {
		t.Fatalf("BERT+DLRM V10/PMT = %v, want > 1", comp)
	}
	if comp <= conf {
		t.Fatalf("complementary pair (%v) should beat conflicting pair (%v)", comp, conf)
	}
	// Memoization: repeated call returns identical value.
	again, _ := perf(d, b)
	if again != comp {
		t.Fatalf("cache miss on symmetric pair: %v vs %v", again, comp)
	}
}
