// Package collocate implements V10's clustering-based workload collocation
// mechanism (paper §3.4): workloads are characterized by resource-utilization
// features, compressed with PCA, clustered with K-Means, and pairwise
// inter-cluster collocation performance profiled offline predicts whether two
// workloads should share an NPU core. The Random (collocate blindly) and
// Heuristic (aggregate utilization must fit) baselines from Table 2 are also
// provided, along with the leave-two-models-out cross-validation used there.
package collocate

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"v10/internal/baseline"
	"v10/internal/mathx"
	"v10/internal/npu"
	"v10/internal/parallel"
	"v10/internal/sched"
	"v10/internal/trace"
)

// Features is a workload's resource signature: exactly what the paper lists —
// SA/VU utilizations, HBM bandwidth consumption, and operator length
// statistics (mean, min, max, log-scaled because lengths span four decades).
type Features struct {
	Name  string // workload instance name, e.g. "BERT-b32"
	Model string // model family (cross-validation groups by this)
	Vec   []float64
}

// FeatureNames documents the order of Features.Vec entries.
var FeatureNames = []string{
	"sa_util", "vu_util", "hbm_util",
	"log_mean_sa_len", "log_mean_vu_len",
	"log_max_sa_len", "log_max_vu_len",
	"sa_time_frac",
}

// ExtractFeatures profiles a workload from its own traces (compiler-style
// offline profiling, no collocation needed) over n requests.
func ExtractFeatures(w *trace.Workload, cfg npu.CoreConfig, n int) Features {
	if n < 1 {
		n = 1
	}
	var sa, vu, serial, bytes float64
	var meanSA, meanVU, maxSA, maxVU float64
	for r := 0; r < n; r++ {
		st := w.Request(r).ComputeStats()
		// Useful cycles: what hardware performance counters expose. The
		// heuristic baseline therefore under-estimates occupancy conflicts —
		// the paper's 57.6% false-positive rate comes from exactly this gap.
		sa += st.UsefulSACycles
		vu += st.UsefulVUCycles
		serial += float64(st.SerialCycles)
		bytes += st.HBMBytes
		meanSA += st.MeanSALen
		meanVU += st.MeanVULen
		maxSA = math.Max(maxSA, float64(st.MaxSALen))
		maxVU = math.Max(maxVU, float64(st.MaxVULen))
	}
	meanSA /= float64(n)
	meanVU /= float64(n)
	saFrac := 0.0
	if sa+vu > 0 {
		saFrac = sa / (sa + vu)
	}
	vec := []float64{
		safeDiv(sa, serial),
		safeDiv(vu, serial),
		safeDiv(bytes, serial*cfg.HBMBytesPerCycle()),
		log1p(meanSA), log1p(meanVU),
		log1p(maxSA), log1p(maxVU),
		saFrac,
	}
	return Features{Name: w.Name, Model: w.Model, Vec: vec}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func log1p(x float64) float64 { return math.Log1p(x) }

// PairPerf is the collocation-performance oracle: the aggregated throughput
// (STP) of the pair under V10-Full divided by under PMT — Table 2 predicts
// whether this ratio reaches 1.3×.
type PairPerf func(a, b *trace.Workload) (float64, error)

// SimPairPerf returns a PairPerf that measures performance by simulation
// (V10-Full STP over PMT STP, both normalized by single-tenant rates).
//
// Results are memoized by workload *identity* (the pointer, symmetric in
// argument order), not by display name — two distinct workloads that happen
// to share a name cannot silently reuse each other's result; instead the
// oracle reports an explicit ambiguous-duplicate-name error the first time
// the second identity appears. The returned function is goroutine-safe:
// concurrent requests for the same pair wait on a single in-flight
// simulation (singleflight) instead of racing to run it twice.
func SimPairPerf(cfg npu.CoreConfig, requests int) PairPerf {
	var (
		mu    sync.Mutex
		ids   = map[*trace.Workload]int{} // identity → dense cache id
		named = map[string]*trace.Workload{}
		memo  parallel.Memo[[2]int, float64]
	)
	// identify registers a workload's identity under mu, rejecting a second
	// distinct workload with an already-registered name.
	identify := func(w *trace.Workload) (int, error) {
		if id, ok := ids[w]; ok {
			return id, nil
		}
		if prev, ok := named[w.Name]; ok && prev != w {
			return 0, fmt.Errorf(
				"collocate: ambiguous duplicate workload name %q: two distinct workloads share it, so cached pair results would be wrong", w.Name)
		}
		id := len(ids)
		ids[w] = id
		named[w.Name] = w
		return id, nil
	}
	return func(a, b *trace.Workload) (float64, error) {
		mu.Lock()
		ia, err := identify(a)
		if err == nil {
			var ib int
			if ib, err = identify(b); err == nil {
				mu.Unlock()
				key := [2]int{ia, ib}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				return memo.Do(key, func() (float64, error) {
					return simPairPerf(a, b, cfg, requests)
				})
			}
		}
		mu.Unlock()
		return 0, err
	}
}

// simPairPerf runs the three simulations behind one oracle query. Each
// simulation engine is confined to this goroutine; the result depends only on
// the pair, config, and request count, so it is deterministic.
func simPairPerf(a, b *trace.Workload, cfg npu.CoreConfig, requests int) (float64, error) {
	pair := []*trace.Workload{a, b}
	rates, err := baseline.SingleTenantRates(pair, cfg, requests)
	if err != nil {
		return 0, err
	}
	pmt, err := baseline.RunPMT(pair, baseline.PMTOptions{
		Config: cfg, RequestsPerWorkload: requests, Seed: 1,
	})
	if err != nil {
		return 0, err
	}
	opts := sched.FullOptions()
	opts.Config = cfg
	opts.RequestsPerWorkload = requests
	full, err := sched.Run(pair, opts)
	if err != nil {
		return 0, err
	}
	stpPMT := pmt.STP(rates)
	if stpPMT <= 0 {
		return 0, fmt.Errorf("collocate: PMT STP is zero for %s+%s", a.Name, b.Name)
	}
	return full.STP(rates) / stpPMT, nil
}

// TrainConfig controls clustering-model training.
type TrainConfig struct {
	K           int     // number of clusters (paper Fig. 15 shows 5)
	PCADims     int     // principal components kept
	Threshold   float64 // predicted-beneficial cutoff (paper: 1.3)
	PairSamples int     // max workload pairs profiled per cluster pair (0 = all)
	Seed        uint64
	// Parallel bounds the worker goroutines used for pairwise collocation
	// profiling (the O(n²) fan-out of simulations): 0 means GOMAXPROCS,
	// 1 forces the serial path. Results are bit-identical either way —
	// the pair set, the RNG stream, and the aggregation order do not depend
	// on the worker count.
	Parallel int
}

func (tc TrainConfig) withDefaults() TrainConfig {
	if tc.K <= 0 {
		tc.K = 5
	}
	if tc.PCADims <= 0 {
		tc.PCADims = 3
	}
	if tc.Threshold <= 0 {
		tc.Threshold = 1.3
	}
	return tc
}

// Model is a trained collocation predictor.
type Model struct {
	cfg        TrainConfig
	pca        *mathx.PCA
	km         *mathx.KMeansResult
	perf       [][]float64 // cluster-pair mean collocation performance
	perfKnown  [][]bool
	globalMean float64

	// Online re-clustering state (nil unless cloned via CloneForOnline).
	onlineCounts []int   // per-centroid observation counts (training + online)
	onlineDrift  float64 // cumulative centroid movement in PCA space
	onlineObs    int     // observations folded in since the clone
}

// ClusterOnly fits the PCA + K-Means stage without pairwise profiling. The
// returned model can assign clusters (Fig. 15) but predicts the neutral
// performance 1.0 for every pair until profiled via Train.
func ClusterOnly(feats []Features, tc TrainConfig) (*Model, error) {
	tc = tc.withDefaults()
	if len(feats) < 2 {
		return nil, fmt.Errorf("collocate: need at least 2 workloads to cluster")
	}
	rows := make([][]float64, len(feats))
	for i, f := range feats {
		rows[i] = f.Vec
	}
	data := mathx.MatrixFromRows(rows)
	pca := mathx.FitPCA(data, tc.PCADims)
	projected := pca.TransformAll(data)
	rng := mathx.NewRNG(tc.Seed + 0xc0110ca7e)
	km := mathx.KMeans(projected, tc.K, 50, rng)

	k := km.Centroids.Rows
	m := &Model{cfg: tc, pca: pca, km: km, globalMean: 1}
	m.perf = make([][]float64, k)
	m.perfKnown = make([][]bool, k)
	for i := range m.perf {
		m.perf[i] = make([]float64, k)
		m.perfKnown[i] = make([]bool, k)
	}
	return m, nil
}

// Train builds the cluster database: PCA + K-Means over the training
// workloads' features, then offline pairwise collocation profiling between
// clusters (paper Fig. 14).
func Train(workloads []*trace.Workload, feats []Features, perf PairPerf, tc TrainConfig) (*Model, error) {
	tc = tc.withDefaults()
	if len(workloads) != len(feats) {
		return nil, fmt.Errorf("collocate: %d workloads but %d feature rows", len(workloads), len(feats))
	}
	m, err := ClusterOnly(feats, tc)
	if err != nil {
		return nil, err
	}
	km := m.km
	k := km.Centroids.Rows
	rng := mathx.NewRNG(tc.Seed + 0x9a1f5)

	// Group training instances by cluster.
	byCluster := make([][]int, k)
	for i, c := range km.Labels {
		byCluster[c] = append(byCluster[c], i)
	}

	// Select the pair sample of every cluster pair first, consuming the RNG
	// in the same deterministic order regardless of worker count, then fan
	// the independent oracle queries out across the worker pool.
	type profJob struct {
		ci, cj int
		pairs  [][2]int
	}
	var jobs []profJob
	var flat [][2]int
	for ci := 0; ci < k; ci++ {
		for cj := ci; cj < k; cj++ {
			pairs := clusterPairs(byCluster[ci], byCluster[cj], ci == cj)
			if tc.PairSamples > 0 && len(pairs) > tc.PairSamples {
				shufflePairs(pairs, rng)
				pairs = pairs[:tc.PairSamples]
			}
			jobs = append(jobs, profJob{ci: ci, cj: cj, pairs: pairs})
			flat = append(flat, pairs...)
		}
	}
	vals, err := parallel.Map(context.Background(), len(flat), tc.Parallel,
		func(i int) (float64, error) {
			p := flat[i]
			v, err := perf(workloads[p[0]], workloads[p[1]])
			if err != nil {
				return 0, fmt.Errorf("collocate: profiling %s+%s: %w",
					workloads[p[0]].Name, workloads[p[1]].Name, err)
			}
			return v, nil
		})
	if err != nil {
		return nil, err
	}

	// Aggregate in the serial iteration order so sums (and therefore the
	// model) are bit-identical to a single-worker run.
	var total, count float64
	off := 0
	for _, job := range jobs {
		var sum float64
		var n int
		for _, v := range vals[off : off+len(job.pairs)] {
			sum += v
			n++
		}
		off += len(job.pairs)
		if n > 0 {
			mean := sum / float64(n)
			m.perf[job.ci][job.cj], m.perf[job.cj][job.ci] = mean, mean
			m.perfKnown[job.ci][job.cj], m.perfKnown[job.cj][job.ci] = true, true
			total += sum
			count += float64(n)
		}
	}
	if count > 0 {
		m.globalMean = total / count
	} else {
		m.globalMean = 1
	}
	return m, nil
}

func clusterPairs(a, b []int, same bool) [][2]int {
	var out [][2]int
	if same {
		for i := 0; i < len(a); i++ {
			for j := i + 1; j < len(a); j++ {
				out = append(out, [2]int{a[i], a[j]})
			}
		}
		return out
	}
	for _, i := range a {
		for _, j := range b {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

func shufflePairs(ps [][2]int, rng *mathx.RNG) {
	for i := len(ps) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		ps[i], ps[j] = ps[j], ps[i]
	}
}

// K returns the number of clusters in the trained model.
func (m *Model) K() int { return m.km.Centroids.Rows }

// PredictCluster maps a workload's features to its cluster.
func (m *Model) PredictCluster(f Features) int {
	return m.km.Predict(m.pca.Transform(f.Vec))
}

// PredictPerf estimates the collocation performance of two workloads from
// their clusters' profiled performance; unprofiled cluster pairs fall back to
// the global mean.
func (m *Model) PredictPerf(a, b Features) float64 {
	ca, cb := m.PredictCluster(a), m.PredictCluster(b)
	if m.perfKnown[ca][cb] {
		return m.perf[ca][cb]
	}
	return m.globalMean
}

// ShouldCollocate predicts whether the pair clears the benefit threshold.
func (m *Model) ShouldCollocate(a, b Features) bool {
	return m.PredictPerf(a, b) >= m.cfg.Threshold
}

// GroupFit scores adding candidate cand to an already-formed group: the
// minimum pairwise predicted performance between cand and every member, or 0
// when any pair falls below the benefit threshold (the group is incompatible)
// or the group is empty. Both the cluster placement planner and the fleet
// dispatcher's spill path rank candidate cores with it.
func (m *Model) GroupFit(feats []Features, group []int, cand int) float64 {
	minPerf := math.Inf(1)
	for _, g := range group {
		if !m.ShouldCollocate(feats[g], feats[cand]) {
			return 0
		}
		if perf := m.PredictPerf(feats[g], feats[cand]); perf < minPerf {
			minPerf = perf
		}
	}
	if math.IsInf(minPerf, 1) {
		return 0
	}
	return minPerf
}

// ClusterAssignments returns instance name → cluster for the training set
// ordering given (used by the Fig. 15 scatter experiment).
func (m *Model) ClusterAssignments(feats []Features) map[string]int {
	out := make(map[string]int, len(feats))
	for _, f := range feats {
		out[f.Name] = m.PredictCluster(f)
	}
	return out
}

// Predictor decides whether to collocate a pair, given their features.
type Predictor interface {
	Name() string
	Predict(a, b Features) bool
}

// RandomPolicy is the paper's "Random" baseline: collocate blindly (always
// predict beneficial), i.e. random pairing with no filtering.
type RandomPolicy struct{}

// Name implements Predictor.
func (RandomPolicy) Name() string { return "Random" }

// Predict always collocates.
func (RandomPolicy) Predict(a, b Features) bool { return true }

// HeuristicPolicy is the paper's heuristic baseline: "the aggregated
// resource utilization of collocated workloads should not exceed the total
// available resource". It sums each workload's aggregate compute utilization
// (mean of SA and VU) and HBM utilization. Because it aggregates across FU
// types and sees only useful-cycle counters, it misses per-FU occupancy
// conflicts and dynamic contention — the source of its high false-positive
// rate in Table 2.
type HeuristicPolicy struct{}

// Name implements Predictor.
func (HeuristicPolicy) Name() string { return "Heuristic" }

// Predict implements the aggregate-capacity check.
func (HeuristicPolicy) Predict(a, b Features) bool {
	aggA := (a.Vec[0] + a.Vec[1]) / 2
	aggB := (b.Vec[0] + b.Vec[1]) / 2
	return aggA+aggB <= 1 && a.Vec[2]+b.Vec[2] <= 1
}

// ClusteringPolicy wraps a trained Model as a Predictor.
type ClusteringPolicy struct{ Model *Model }

// Name implements Predictor.
func (ClusteringPolicy) Name() string { return "Clustering" }

// Predict implements Predictor.
func (c ClusteringPolicy) Predict(a, b Features) bool { return c.Model.ShouldCollocate(a, b) }

// EvalResult mirrors a row of the paper's Table 2.
type EvalResult struct {
	Predictor string
	Accuracy  float64 // (TP+TN)/N
	TPRate    float64 // TP/(TP+FN): share of actual positives predicted positive
	TNRate    float64 // TN/(TN+FP)
	FPRate    float64 // FP/(FP+TN)
	FNRate    float64 // FN/(FN+TP)
	WorstPerf float64 // minimum actual performance among predicted positives
	N         int
}

// TestPair is one labeled evaluation case.
type TestPair struct {
	A, B Features
	Perf float64 // ground-truth collocation performance
}

// Evaluate scores a predictor against labeled pairs with the given benefit
// threshold.
func Evaluate(p Predictor, pairs []TestPair, threshold float64) EvalResult {
	var tp, tn, fp, fn int
	worst := math.Inf(1)
	for _, tc := range pairs {
		pred := p.Predict(tc.A, tc.B)
		actual := tc.Perf >= threshold
		switch {
		case pred && actual:
			tp++
		case !pred && !actual:
			tn++
		case pred && !actual:
			fp++
		default:
			fn++
		}
		if pred && tc.Perf < worst {
			worst = tc.Perf
		}
	}
	n := len(pairs)
	res := EvalResult{Predictor: p.Name(), N: n}
	if n > 0 {
		res.Accuracy = float64(tp+tn) / float64(n)
	}
	if tp+fn > 0 {
		res.TPRate = float64(tp) / float64(tp+fn)
		res.FNRate = float64(fn) / float64(tp+fn)
	}
	if tn+fp > 0 {
		res.TNRate = float64(tn) / float64(tn+fp)
		res.FPRate = float64(fp) / float64(tn+fp)
	}
	if math.IsInf(worst, 1) {
		res.WorstPerf = 1
	} else {
		res.WorstPerf = worst
	}
	return res
}

// CrossValidate runs the paper's leave-two-models-out protocol: for every
// pair of model families, train on all instances of the other families and
// test on pairs drawn from the held-out instances, aggregating the confusion
// counts across splits. Instances sharing a model family are held out
// together. It returns one EvalResult per predictor-builder.
//
// Splits are independent, so they run on tc.Parallel workers (0 =
// GOMAXPROCS); training inside each split then runs serially to keep the
// total worker count bounded. Split results are merged in split order, so
// the returned EvalResults are bit-identical to a fully serial run. perf is
// shared across concurrent splits and must be goroutine-safe (SimPairPerf
// is).
func CrossValidate(
	workloads []*trace.Workload,
	feats []Features,
	perf PairPerf,
	tc TrainConfig,
	buildPredictors func(m *Model) []Predictor,
) ([]EvalResult, error) {
	tc = tc.withDefaults()
	if len(workloads) != len(feats) {
		return nil, fmt.Errorf("collocate: workload/feature count mismatch")
	}
	modelsOf := map[string][]int{}
	var names []string
	for i, f := range feats {
		if _, ok := modelsOf[f.Model]; !ok {
			names = append(names, f.Model)
		}
		modelsOf[f.Model] = append(modelsOf[f.Model], i)
	}
	sort.Strings(names)
	if len(names) < 3 {
		return nil, fmt.Errorf("collocate: cross-validation needs >= 3 model families, got %d", len(names))
	}

	var splits [][2]string
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			splits = append(splits, [2]string{names[i], names[j]})
		}
	}

	// Each split is self-contained: train on the remaining families, label
	// the held-out pairs with ground truth, and record every predictor's
	// calls. The splits fan out across the worker pool; profiling inside
	// Train stays serial so the pool is the only source of concurrency.
	splitTC := tc
	splitTC.Parallel = 1
	type splitResult struct {
		names []string
		cases []TestPair
		preds [][]bool // per predictor, per case
	}
	results, err := parallel.Map(context.Background(), len(splits), tc.Parallel,
		func(s int) (*splitResult, error) {
			heldOut := map[string]bool{splits[s][0]: true, splits[s][1]: true}
			var trainW []*trace.Workload
			var trainF []Features
			var testIdx []int
			for k, f := range feats {
				if heldOut[f.Model] {
					testIdx = append(testIdx, k)
				} else {
					trainW = append(trainW, workloads[k])
					trainF = append(trainF, f)
				}
			}
			model, err := Train(trainW, trainF, perf, splitTC)
			if err != nil {
				return nil, fmt.Errorf("collocate: split (%s,%s): %w", splits[s][0], splits[s][1], err)
			}
			// Label held-out pairs with ground truth.
			var cases []TestPair
			for a := 0; a < len(testIdx); a++ {
				for b := a + 1; b < len(testIdx); b++ {
					ia, ib := testIdx[a], testIdx[b]
					if feats[ia].Model == feats[ib].Model {
						continue // the paper pairs distinct services
					}
					v, err := perf(workloads[ia], workloads[ib])
					if err != nil {
						return nil, err
					}
					cases = append(cases, TestPair{A: feats[ia], B: feats[ib], Perf: v})
				}
			}
			sr := &splitResult{cases: cases}
			for _, p := range buildPredictors(model) {
				preds := make([]bool, len(cases))
				for ci, c := range cases {
					preds[ci] = p.Predict(c.A, c.B)
				}
				sr.names = append(sr.names, p.Name())
				sr.preds = append(sr.preds, preds)
			}
			return sr, nil
		})
	if err != nil {
		return nil, err
	}

	// Merge in split order so aggregation matches the serial path exactly.
	type agg struct {
		pairs []TestPair
		pred  []bool
	}
	aggregates := map[string]*agg{}
	order := []string{}
	for _, sr := range results {
		for pi, name := range sr.names {
			a, ok := aggregates[name]
			if !ok {
				a = &agg{}
				aggregates[name] = a
				order = append(order, name)
			}
			a.pairs = append(a.pairs, sr.cases...)
			a.pred = append(a.pred, sr.preds[pi]...)
		}
	}

	var out []EvalResult
	for _, name := range order {
		a := aggregates[name]
		out = append(out, scorePredictions(name, a.pairs, a.pred, tc.Threshold))
	}
	return out, nil
}

// scorePredictions aggregates already-made predictions into an EvalResult.
func scorePredictions(name string, pairs []TestPair, preds []bool, threshold float64) EvalResult {
	var tp, tn, fp, fn int
	worst := math.Inf(1)
	for i, tc := range pairs {
		actual := tc.Perf >= threshold
		switch {
		case preds[i] && actual:
			tp++
		case !preds[i] && !actual:
			tn++
		case preds[i] && !actual:
			fp++
		default:
			fn++
		}
		if preds[i] && tc.Perf < worst {
			worst = tc.Perf
		}
	}
	res := EvalResult{Predictor: name, N: len(pairs)}
	if len(pairs) > 0 {
		res.Accuracy = float64(tp+tn) / float64(len(pairs))
	}
	if tp+fn > 0 {
		res.TPRate = float64(tp) / float64(tp+fn)
		res.FNRate = float64(fn) / float64(tp+fn)
	}
	if tn+fp > 0 {
		res.TNRate = float64(tn) / float64(tn+fp)
		res.FPRate = float64(fp) / float64(tn+fp)
	}
	if math.IsInf(worst, 1) {
		res.WorstPerf = 1
	} else {
		res.WorstPerf = worst
	}
	return res
}
