package collocate

// Online incremental re-clustering: as the served tenant mix drifts away from
// the offline training set, the control plane folds freshly observed feature
// vectors into the K-Means stage with sequential (MacQueen) centroid updates
// instead of a full retrain. The PCA projection and the cluster-pair
// performance database stay frozen — only centroid *positions* move, so
// PredictCluster keeps tracking the live mix while PredictPerf still reads
// the offline-profiled cluster pairs.

// CloneForOnline returns a copy of the model whose K-Means centroids can be
// updated online without mutating the receiver. The PCA projection and the
// profiled cluster-pair performance tables are shared (they are immutable
// after training); the centroid matrix and per-centroid observation counts
// are deep-copied. Cloning is what keeps counterfactual replay exact: each
// fleet run updates its own copy, so re-running a seeded scenario starts from
// the same offline centroids every time.
func (m *Model) CloneForOnline() *Model {
	out := &Model{
		cfg:        m.cfg,
		pca:        m.pca,
		km:         m.km.Clone(),
		perf:       m.perf,
		perfKnown:  m.perfKnown,
		globalMean: m.globalMean,
	}
	out.onlineCounts = make([]int, out.km.Centroids.Rows)
	// Seed the per-centroid counts from the training assignment so early
	// online observations move centroids gently instead of teleporting them.
	for _, c := range m.km.Labels {
		if c >= 0 && c < len(out.onlineCounts) {
			out.onlineCounts[c]++
		}
	}
	if m.onlineCounts != nil {
		copy(out.onlineCounts, m.onlineCounts)
		out.onlineDrift = m.onlineDrift
		out.onlineObs = m.onlineObs
	}
	return out
}

// WithThreshold returns a shallow copy of the model whose predicted-beneficial
// cutoff is th (ShouldCollocate and GroupFit compare predicted pair
// performance against it). Everything else — PCA projection, centroids, the
// profiled performance tables — is shared with the receiver, which is never
// mutated; the policy-search harness sweeps the threshold over one trained
// model this way instead of retraining per candidate. th must be positive;
// a non-positive th returns the receiver unchanged (the trained cutoff).
func (m *Model) WithThreshold(th float64) *Model {
	if m == nil || th <= 0 || th == m.cfg.Threshold {
		return m
	}
	out := *m
	out.cfg.Threshold = th
	return &out
}

// Threshold reports the model's predicted-beneficial cutoff.
func (m *Model) Threshold() float64 { return m.cfg.Threshold }

// Observe folds one live feature vector into the clustering: it assigns f to
// its nearest centroid, nudges that centroid toward f with learning rate
// 1/(count+1) (the MacQueen sequential K-Means step), and returns the cluster
// plus the Euclidean distance the centroid moved in PCA space. Calling
// Observe on a model that was not cloned via CloneForOnline panics — online
// updates on the shared trained model would corrupt every other user.
func (m *Model) Observe(f Features) (cluster int, moved float64) {
	if m.onlineCounts == nil {
		panic("collocate: Observe requires a model cloned via CloneForOnline")
	}
	x := m.pca.Transform(f.Vec)
	cluster = m.km.Predict(x)
	lr := 1.0 / float64(m.onlineCounts[cluster]+1)
	moved = m.km.UpdateCentroid(cluster, x, lr)
	m.onlineCounts[cluster]++
	m.onlineDrift += moved
	m.onlineObs++
	return cluster, moved
}

// ObserveBatch folds a window of observed features in order and returns the
// total centroid movement of the batch.
func (m *Model) ObserveBatch(fs []Features) float64 {
	total := 0.0
	for _, f := range fs {
		_, moved := m.Observe(f)
		total += moved
	}
	return total
}

// OnlineDrift returns the cumulative Euclidean centroid movement accumulated
// by Observe since the clone, and the number of observations folded in.
func (m *Model) OnlineDrift() (drift float64, observations int) {
	return m.onlineDrift, m.onlineObs
}
