package collocate

import (
	"reflect"
	"sync"
	"testing"

	"v10/internal/trace"
)

// modelFingerprint captures everything a trained model can ever emit:
// centroids, the pairwise performance database, the global mean, and the
// cluster/perf predictions for every training feature row.
type modelFingerprint struct {
	centroids  []float64
	perf       [][]float64
	perfKnown  [][]bool
	globalMean float64
	clusters   []int
	pairPerfs  []float64
}

func fingerprint(m *Model, fs []Features) modelFingerprint {
	fp := modelFingerprint{
		centroids:  append([]float64(nil), m.km.Centroids.Data...),
		perf:       m.perf,
		perfKnown:  m.perfKnown,
		globalMean: m.globalMean,
	}
	for _, f := range fs {
		fp.clusters = append(fp.clusters, m.PredictCluster(f))
	}
	for i := 0; i < len(fs); i++ {
		for j := i + 1; j < len(fs); j++ {
			fp.pairPerfs = append(fp.pairPerfs, m.PredictPerf(fs[i], fs[j]))
		}
	}
	return fp
}

// TestTrainParallelBitIdentical trains with the serial path and with the
// worker pool on the same seed and simulation-backed oracle, and asserts
// the models are bit-identical: same centroids, same cluster-pair
// performance database, same predictions. Every float comparison is exact
// (==, via reflect.DeepEqual) — parallelism must not change aggregation
// order anywhere.
func TestTrainParallelBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed oracle is slow")
	}
	ws, fs := zoo(t, []int{32})
	train := func(workers int) *Model {
		// A fresh oracle per run: sharing one would let the first run's cache
		// serve the second and mask an ordering bug.
		perf := SimPairPerf(cfg, 2)
		m, err := Train(ws, fs, perf, TrainConfig{K: 4, PairSamples: 3, Seed: 11, Parallel: workers})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	serial := fingerprint(train(1), fs)
	for _, workers := range []int{2, 8} {
		par := fingerprint(train(workers), fs)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("model trained with %d workers differs from serial:\nserial: %+v\nparallel: %+v",
				workers, serial, par)
		}
	}
}

// TestCrossValidateParallelBitIdentical runs the leave-two-out protocol
// serially and with parallel splits and asserts identical EvalResult
// numbers (a cheap deterministic oracle keeps it fast enough for -short).
func TestCrossValidateParallelBitIdentical(t *testing.T) {
	ws, fs := zoo(t, []int{8, 32})
	run := func(workers int) []EvalResult {
		results, err := CrossValidate(ws, fs, fakePerf,
			TrainConfig{K: 4, Threshold: 1.3, PairSamples: 6, Seed: 7, Parallel: workers},
			func(m *Model) []Predictor {
				return []Predictor{RandomPolicy{}, HeuristicPolicy{}, ClusteringPolicy{m}}
			})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	serial := run(1)
	for _, workers := range []int{3, 8} {
		if par := run(workers); !reflect.DeepEqual(serial, par) {
			t.Fatalf("cross-validation with %d workers differs from serial:\nserial: %+v\nparallel: %+v",
				workers, serial, par)
		}
	}
}

// tinyWorkload builds a synthetic two-op workload so SimPairPerf tests
// don't pay for full model traces.
func tinyWorkload(name string, computeSA, computeVU int64) *trace.Workload {
	gen := func(int) *trace.Graph {
		return &trace.Graph{Ops: []trace.Op{
			{ID: 0, Kind: trace.KindSA, Compute: computeSA, FLOPs: 1, HBMBytes: 64},
			{ID: 1, Kind: trace.KindVU, Compute: computeVU, Deps: []int{0}, FLOPs: 1, HBMBytes: 64},
		}}
	}
	return trace.NewWorkload(name, name, 1, gen)
}

// TestSimPairPerfRejectsAmbiguousDuplicateNames covers the memo-poisoning
// bug: two distinct workloads sharing a display name must be rejected, not
// silently served each other's cached result.
func TestSimPairPerfRejectsAmbiguousDuplicateNames(t *testing.T) {
	perf := SimPairPerf(cfg, 1)
	a := tinyWorkload("dup", 1000, 4000)
	b := tinyWorkload("other", 4000, 1000)
	if _, err := perf(a, b); err != nil {
		t.Fatal(err)
	}
	imposter := tinyWorkload("dup", 9000, 9000) // distinct workload, same name
	if _, err := perf(imposter, b); err == nil {
		t.Fatal("distinct workload reusing the name 'dup' was accepted; its cached result would be wrong")
	}
	// The original identity keeps working after the rejection.
	if _, err := perf(b, a); err != nil {
		t.Fatalf("original pair broken after duplicate rejection: %v", err)
	}
}

// TestSimPairPerfConcurrentSameValue hammers the oracle from many
// goroutines (run under -race in CI): every caller must observe the same
// value for the same pair, whichever goroutine ran the simulation.
func TestSimPairPerfConcurrentSameValue(t *testing.T) {
	perf := SimPairPerf(cfg, 1)
	a := tinyWorkload("sa-heavy", 6000, 1000)
	b := tinyWorkload("vu-heavy", 1000, 6000)
	c := tinyWorkload("balanced", 3000, 3000)
	pairs := [][2]*trace.Workload{{a, b}, {b, a}, {a, c}, {c, b}}

	const callers = 12
	got := make([][]float64, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for g := 0; g < callers; g++ {
		go func(g int) {
			defer wg.Done()
			vals := make([]float64, len(pairs))
			for i, p := range pairs {
				v, err := perf(p[0], p[1])
				if err != nil {
					t.Error(err)
					return
				}
				vals[i] = v
			}
			got[g] = vals
		}(g)
	}
	wg.Wait()
	for g := 1; g < callers; g++ {
		if !reflect.DeepEqual(got[0], got[g]) {
			t.Fatalf("goroutine %d saw %v, goroutine 0 saw %v", g, got[g], got[0])
		}
	}
	// Symmetric pair (a,b)/(b,a) must share one cache entry.
	if got[0][0] != got[0][1] {
		t.Fatalf("symmetric lookup differs: %v vs %v", got[0][0], got[0][1])
	}
}
