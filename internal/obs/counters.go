package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// CounterRow is one per-workload counter snapshot: the cumulative values of
// the workload's context-table counters at a sampling instant. Consecutive
// rows for the same workload difference into rates (busy cycles per interval,
// requests per interval, …), which is how the paper's utilization-over-time
// breakdowns are built.
type CounterRow struct {
	Scheme       string  `json:"scheme,omitempty"`
	Cycle        int64   `json:"cycle"`
	Workload     string  `json:"workload"`
	Requests     int     `json:"requests"`
	ActiveCycles int64   `json:"active_cycles"`
	SABusyCycles int64   `json:"sa_busy_cycles"`
	VUBusyCycles int64   `json:"vu_busy_cycles"`
	Preemptions  int64   `json:"preemptions"`
	SwitchCycles int64   `json:"switch_cycles"`
	HBMBytes     float64 `json:"hbm_bytes"`
	CtxBytes     int64   `json:"ctx_bytes"`
	QueueDepth   int     `json:"queue_depth"`
}

// CounterLog collects counter snapshots sampled on an interval during a run
// and exports them as CSV or JSON. Like the ChromeWriter it supports
// sections: BeginSection stamps subsequent rows with a scheme label so one
// log can hold a whole CompareSchemes sweep.
type CounterLog struct {
	label string
	Rows  []CounterRow
}

// NewCounterLog returns an empty log.
func NewCounterLog() *CounterLog { return &CounterLog{} }

// BeginSection stamps subsequent rows with the given scheme label.
func (l *CounterLog) BeginSection(label string) { l.label = label }

// Add appends one snapshot row, stamping the current section label.
func (l *CounterLog) Add(r CounterRow) {
	if r.Scheme == "" {
		r.Scheme = l.label
	}
	l.Rows = append(l.Rows, r)
}

// Len returns the number of rows collected.
func (l *CounterLog) Len() int { return len(l.Rows) }

// csvHeader lists the exported columns, in order.
var csvHeader = []string{
	"scheme", "cycle", "workload", "requests", "active_cycles",
	"sa_busy_cycles", "vu_busy_cycles", "preemptions", "switch_cycles",
	"hbm_bytes", "ctx_bytes", "queue_depth",
}

// WriteCSV renders the rows as CSV with a header line.
func (l *CounterLog) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(csvHeader, ","))
	b.WriteByte('\n')
	for _, r := range l.Rows {
		fmt.Fprintf(&b, "%s,%d,%s,%d,%d,%d,%d,%d,%d,%.0f,%d,%d\n",
			csvField(r.Scheme), r.Cycle, csvField(r.Workload), r.Requests,
			r.ActiveCycles, r.SABusyCycles, r.VUBusyCycles, r.Preemptions,
			r.SwitchCycles, r.HBMBytes, r.CtxBytes, r.QueueDepth)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// csvField quotes a value when it would break the row.
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// WriteJSON renders the rows as a JSON array.
func (l *CounterLog) WriteJSON(w io.Writer) error {
	rows := l.Rows
	if rows == nil {
		rows = []CounterRow{}
	}
	data, err := json.MarshalIndent(rows, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile exports to path, picking the format from the extension:
// .json writes JSON, anything else CSV.
func (l *CounterLog) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = l.WriteJSON(f)
	} else {
		err = l.WriteCSV(f)
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("obs: writing counters %s: %w", path, err)
	}
	return f.Close()
}
