// Package obs is the simulator's observability layer: a zero-cost-when-
// disabled tracing hook plus counter-snapshot export, threaded through the
// discrete-event engine, the fluid HBM pool, the DMA engine, and the V10
// operator scheduler.
//
// The design splits event *production* from event *consumption*:
//
//   - Producers (sched.runner, sim.FluidPool, dma.Engine) hold a Tracer that
//     is nil by default. Every emission site is guarded by a nil check, so a
//     run without tracing pays only an untaken branch — the acceptance bar is
//     that BenchmarkRun shows no measurable regression with tracing off.
//   - Sinks implement Tracer: Ring (bounded in-memory buffer the tests assert
//     against), ChromeWriter (Chrome trace-event JSON loadable in Perfetto or
//     chrome://tracing), or any user-provided implementation. Multi fans one
//     event stream out to several sinks.
//
// Events carry workload / functional-unit / request attribution so a
// timeline can answer the questions the paper's Figs. 16–17 and §3.3
// preemption accounting ask: which operator ran where, when, and what the
// context-switch overhead around it was.
package obs

import "fmt"

// EventType enumerates the typed events the simulators emit.
type EventType uint8

const (
	// EvDispatch marks the scheduler binding a ready operator to an FU
	// (instant, FU-attributed).
	EvDispatch EventType = iota
	// EvStall spans an operator's DMA/instruction-fetch stall phase before it
	// becomes ready (Dur cycles, workload-attributed).
	EvStall
	// EvRunSegment spans one contiguous execution segment of an operator on
	// an FU (Dur cycles). An unpreempted operator is one segment; a preempted
	// one contributes a segment per resumption.
	EvRunSegment
	// EvPreempt marks an operator being preempted off its FU (instant).
	// Arg0 is the remaining compute cycles at the preemption point.
	EvPreempt
	// EvCtxSave spans the exposed context-save cost of a preemption
	// (§3.3: SA input-replay drain or VU register spill; Dur cycles).
	EvCtxSave
	// EvCtxRestore spans the context-restore cost paid when a preempted
	// operator is re-dispatched (Dur cycles).
	EvCtxRestore
	// EvDispatchDelay spans the exposed scheduling-decision latency of the
	// §4 software scheduler (Dur cycles; the hardware scheduler hides it).
	EvDispatchDelay
	// EvRequestDone marks a request completing (instant). Arg0 is the
	// request latency in cycles, including open-loop queueing.
	EvRequestDone
	// EvHBMRebalance marks the fluid pool re-solving its max-min bandwidth
	// allocation (instant). Arg0 is the number of active tasks, Arg1 the
	// total allocated bandwidth in bytes/cycle.
	EvHBMRebalance
	// EvDMA spans one DMA transfer on the channel (Dur cycles). Arg0 is the
	// transfer size in bytes, Arg1 the cycles it waited behind earlier
	// transfers in the FIFO.
	EvDMA
	// EvCoreFail marks a fail-stop: the core halts at this cycle and serves
	// nothing afterwards (instant). Arg0 is the core index when the emitter
	// knows it (fleet level); -1 from inside a core's own run.
	EvCoreFail
	// EvCoreStall spans a transient straggler window during which the core's
	// functional units made no compute progress (Dur cycles; emitted at the
	// window end like every span).
	EvCoreStall
	// EvHBMDegrade spans a window of degraded HBM bandwidth (Dur cycles).
	// Arg0 is the capacity factor in (0,1] that was applied.
	EvHBMDegrade
	// EvVMemPressure spans a window of vector-memory pressure (Dur cycles).
	// Arg0 is the partition factor in (0,1] applied to requests that started
	// inside the window.
	EvVMemPressure
	// EvHeartbeatMiss marks the fleet dispatcher observing a missed heartbeat
	// from a core (instant). Arg0 is the core index, Arg1 the consecutive
	// miss count.
	EvHeartbeatMiss
	// EvCoreDead marks the dispatcher declaring a core dead after enough
	// consecutive missed heartbeats (instant). Arg0 is the core index, Arg1
	// the cycle the core actually failed.
	EvCoreDead
	// EvMigrate marks one victim request re-dispatched onto a surviving core
	// after a failure (instant, workload-attributed). Arg0 is the target
	// core, Arg1 the latency debt in cycles between the request's original
	// arrival and the migration landing.
	EvMigrate
	// EvMigrateShed marks a victim request dropped after exhausting its
	// migration retry budget (instant, workload-attributed). Arg0 is the
	// attempts spent.
	EvMigrateShed
	// EvSliceHBM marks one vNPU slice's token bucket granting an operator's
	// HBM charge (instant, workload-attributed, emitted at the grant cycle).
	// Arg0 is the slice index, Arg1 the charged bytes. The isolation
	// conservation oracle replays these against the slice's window quota.
	EvSliceHBM
	// EvSliceThrottle spans the stall a slice's exhausted HBM window imposed
	// on an operator's DMA (Dur cycles, workload-attributed, emitted at the
	// grant cycle like every span). Arg0 is the slice index.
	EvSliceThrottle
	// EvSliceCapHit marks a vector-memory reservation rejected by a slice's
	// hard ceiling (instant, workload-attributed; the scheduler skips the
	// preemption instead of spilling past the cap). Arg0 is the slice index.
	EvSliceCapHit
	// EvScaleUp marks the control plane activating a spare core (instant).
	// Arg0 is the core index, Arg1 the active core count after the decision.
	EvScaleUp
	// EvScaleDown marks the control plane deciding to retire a core (instant).
	// Arg0 is the core index, Arg1 the active core count after the decision.
	EvScaleDown
	// EvCoreDrain marks a core's queue being drained for scale-down (instant).
	// Arg0 is the core index, Arg1 the number of victim requests evicted.
	EvCoreDrain
	// EvReadmit marks one drained victim request landing on a surviving core
	// (instant, workload-attributed). Arg0 is the target core, Arg1 the
	// latency debt in cycles between the original arrival and the landing.
	EvReadmit
	// EvRecluster marks the control plane refreshing the collocation model
	// from the drifted tenant mix (instant). Arg0 is the cumulative centroid
	// drift in PCA space, Arg1 the number of observations folded in so far.
	EvRecluster

	numEventTypes // keep last
)

// String names the event type the way the trace files spell it.
func (t EventType) String() string {
	switch t {
	case EvDispatch:
		return "dispatch"
	case EvStall:
		return "stall"
	case EvRunSegment:
		return "run"
	case EvPreempt:
		return "preempt"
	case EvCtxSave:
		return "ctx-save"
	case EvCtxRestore:
		return "ctx-restore"
	case EvDispatchDelay:
		return "sched-latency"
	case EvRequestDone:
		return "request-done"
	case EvHBMRebalance:
		return "hbm-rebalance"
	case EvDMA:
		return "dma"
	case EvCoreFail:
		return "core-fail"
	case EvCoreStall:
		return "core-stall"
	case EvHBMDegrade:
		return "hbm-degrade"
	case EvVMemPressure:
		return "vmem-pressure"
	case EvHeartbeatMiss:
		return "heartbeat-miss"
	case EvCoreDead:
		return "core-dead"
	case EvMigrate:
		return "migrate"
	case EvMigrateShed:
		return "migrate-shed"
	case EvSliceHBM:
		return "slice-hbm"
	case EvSliceThrottle:
		return "slice-throttle"
	case EvSliceCapHit:
		return "slice-cap-hit"
	case EvScaleUp:
		return "scale-up"
	case EvScaleDown:
		return "scale-down"
	case EvCoreDrain:
		return "core-drain"
	case EvReadmit:
		return "readmit"
	case EvRecluster:
		return "reclustered"
	}
	return fmt.Sprintf("EventType(%d)", uint8(t))
}

// FU kind codes used in Event.FUKind.
const (
	FUNone = -1 // event is not attributed to a functional unit
	FUSA   = 0
	FUVU   = 1
)

// Event is one timeline record. Spans (Dur > 0) are emitted at their *end*:
// Time is the cycle the span finished and Time-Dur the cycle it began, which
// lets producers emit a segment once its length is known instead of pairing
// begin/end records.
type Event struct {
	Time int64 // cycle the event fired (span end when Dur > 0)
	Dur  int64 // span length in cycles; 0 = instant event
	Type EventType

	Workload string // workload display name; "" when not attributed
	WIdx     int    // workload index within the run; -1 when not attributed
	FUKind   int    // FUSA, FUVU, or FUNone
	FUIndex  int    // index within the FU kind; -1 when not attributed
	Request  int    // request ordinal within the workload; -1 when n/a
	Op       int    // operator index within the request; -1 when n/a

	Arg0 float64 // type-specific payload (see the EventType docs)
	Arg1 float64
}

// Tracer receives simulation events. Implementations must not retain the
// engine's time ordering assumptions beyond what Emit is given: events arrive
// in nondecreasing Time order per producer under the determinism contract.
// A nil Tracer disables tracing; producers guard every emission site.
type Tracer interface {
	Emit(e Event)
}

// Log is the simplest Tracer: it records the full event stream in memory, in
// emission order. The simcheck oracles replay it against closed-form
// expectations and the fleet runner uses one per core so parallel core runs
// can be re-emitted deterministically into a shared sink afterwards.
type Log struct {
	Events []Event
}

// Emit implements Tracer.
func (l *Log) Emit(e Event) { l.Events = append(l.Events, e) }

// Replay re-emits every recorded event into sink in order.
func (l *Log) Replay(sink Tracer) {
	if sink == nil {
		return
	}
	for _, e := range l.Events {
		sink.Emit(e)
	}
}

// multi fans events out to several sinks.
type multi []Tracer

func (m multi) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}

// Multi returns a Tracer that forwards every event to all non-nil sinks.
// It returns nil when no usable sink remains, preserving the nil fast path.
func Multi(sinks ...Tracer) Tracer {
	var out multi
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
