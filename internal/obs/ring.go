package obs

// Ring is a bounded in-memory event sink. When full it drops the *oldest*
// events, so after a long run it holds the tail of the timeline — the part a
// test or a post-mortem usually wants. The zero value is unusable; use
// NewRing.
type Ring struct {
	buf     []Event
	start   int // index of the oldest event
	n       int // events currently held
	dropped int64
}

// NewRing creates a ring buffer holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("obs: ring capacity must be positive")
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit records the event, evicting the oldest if the ring is full.
func (r *Ring) Emit(e Event) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
		return
	}
	r.buf[r.start] = e
	r.start = (r.start + 1) % len(r.buf)
	r.dropped++
}

// Len returns the number of events currently held.
func (r *Ring) Len() int { return r.n }

// Dropped returns how many events were evicted to make room.
func (r *Ring) Dropped() int64 { return r.dropped }

// Events returns the held events oldest-first as a fresh slice.
func (r *Ring) Events() []Event {
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Count returns how many held events have the given type.
func (r *Ring) Count(t EventType) int {
	c := 0
	for i := 0; i < r.n; i++ {
		if r.buf[(r.start+i)%len(r.buf)].Type == t {
			c++
		}
	}
	return c
}

// SumDur returns the total Dur of held events of the given type, optionally
// restricted to one workload index (pass WIdx < 0 for all workloads).
func (r *Ring) SumDur(t EventType, widx int) int64 {
	var sum int64
	for i := 0; i < r.n; i++ {
		e := r.buf[(r.start+i)%len(r.buf)]
		if e.Type == t && (widx < 0 || e.WIdx == widx) {
			sum += e.Dur
		}
	}
	return sum
}
