// Golden-file tests for the Chrome/Perfetto trace writer.
//
// TestChromeWriterGolden compares WriteTo's byte output against
// testdata/chrome_golden.json. After an intentional format change, regenerate
// the golden file with:
//
//	go test ./internal/obs -run TestChromeWriterGolden -update
//
// then eyeball the diff (and ideally load the file in ui.perfetto.dev) before
// committing it. The -update flag rewrites the golden file with the current
// output, so running it against a broken writer would bless the breakage —
// never use it to "fix" an unexplained failure.
package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenEvents is a synthetic timeline exercising every event type, both
// phases (span and instant), FU/workload/DMA track routing, and a second
// section. It mirrors the shape of a real V10-Full run in miniature.
func goldenEvents(w *ChromeWriter) {
	w.BeginSection("V10-Full")
	w.Emit(Event{Time: 0, Type: EvDispatch, Workload: "BERT-b32", WIdx: 0,
		FUKind: FUSA, FUIndex: 0, Request: 0, Op: 0})
	w.Emit(Event{Time: 700, Dur: 700, Type: EvStall, Workload: "BERT-b32",
		WIdx: 0, FUKind: FUNone, FUIndex: -1, Request: 0, Op: 0})
	w.Emit(Event{Time: 1400, Dur: 700, Type: EvRunSegment, Workload: "BERT-b32",
		WIdx: 0, FUKind: FUSA, FUIndex: 0, Request: 0, Op: 0})
	w.Emit(Event{Time: 1400, Type: EvPreempt, Workload: "BERT-b32", WIdx: 0,
		FUKind: FUSA, FUIndex: 0, Request: 0, Op: 0, Arg0: 2100})
	w.Emit(Event{Time: 1500, Dur: 100, Type: EvCtxSave, Workload: "BERT-b32",
		WIdx: 0, FUKind: FUSA, FUIndex: 0, Request: 0, Op: 0})
	w.Emit(Event{Time: 2100, Dur: 600, Type: EvRunSegment, Workload: "NCF-b32",
		WIdx: 1, FUKind: FUVU, FUIndex: 0, Request: 0, Op: 0})
	w.Emit(Event{Time: 2200, Dur: 100, Type: EvCtxRestore, Workload: "BERT-b32",
		WIdx: 0, FUKind: FUSA, FUIndex: 0, Request: 0, Op: 0})
	w.Emit(Event{Time: 2300, Dur: 50, Type: EvDispatchDelay, Workload: "NCF-b32",
		WIdx: 1, FUKind: FUVU, FUIndex: 0, Request: 0, Op: 1})
	w.Emit(Event{Time: 2400, Type: EvHBMRebalance, WIdx: -1, FUKind: FUNone,
		FUIndex: -1, Request: -1, Op: -1, Arg0: 2, Arg1: 471.4})
	w.Emit(Event{Time: 3500, Dur: 1000, Type: EvDMA, WIdx: -1, FUKind: FUNone,
		FUIndex: -1, Request: -1, Op: -1, Arg0: 65536, Arg1: 300})
	w.Emit(Event{Time: 4200, Type: EvRequestDone, Workload: "NCF-b32", WIdx: 1,
		FUKind: FUNone, FUIndex: -1, Request: 0, Op: -1, Arg0: 4200})
	w.BeginSection("V10-Base")
	w.Emit(Event{Time: 700, Dur: 700, Type: EvRunSegment, Workload: "BERT-b32",
		WIdx: 0, FUKind: FUSA, FUIndex: 0, Request: 0, Op: 0})
}

// TestChromeWriterGolden pins the exact byte output: the determinism contract
// says a fixed event stream renders to a fixed file. Regenerate with
// `go test ./internal/obs -run Golden -update` after an intentional change.
func TestChromeWriterGolden(t *testing.T) {
	w := NewChromeWriter(700)
	goldenEvents(w)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace output differs from %s (run with -update after intentional changes)\ngot:\n%s",
			golden, buf.String())
	}
}

// TestChromeWriterJSONShape checks structural properties independent of the
// golden bytes: valid JSON, section/track metadata, phase selection, and the
// cycle→microsecond conversion.
func TestChromeWriterJSONShape(t *testing.T) {
	w := NewChromeWriter(700)
	goldenEvents(w)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	var f struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}

	processes := map[int]string{}
	phases := map[string]int{}
	var sawRun, sawPreempt, sawCounter bool
	for _, e := range f.TraceEvents {
		phases[e.Ph]++
		switch {
		case e.Ph == "M" && e.Name == "process_name":
			processes[e.Pid], _ = e.Args["name"].(string)
		case e.Ph == "X" && e.Name == "BERT-b32" && e.Pid == 1:
			// First run segment: cycles 700–1400 at 700 cyc/µs → ts 1 µs, dur 1 µs.
			if !sawRun {
				sawRun = true
				if e.Ts != 1 || e.Dur != 1 {
					t.Errorf("run segment ts/dur = %v/%v µs, want 1/1", e.Ts, e.Dur)
				}
				if e.Tid != tidSA {
					t.Errorf("run segment tid = %d, want SA track %d", e.Tid, tidSA)
				}
			}
		case e.Ph == "i" && e.Name == "preempt":
			sawPreempt = true
			if e.Args["remaining_cycles"] != 2100.0 {
				t.Errorf("preempt args = %v", e.Args)
			}
		case e.Ph == "C":
			sawCounter = true
			if e.Name != "hbm" {
				t.Errorf("counter name = %q", e.Name)
			}
		}
	}
	if processes[1] != "V10-Full" || processes[2] != "V10-Base" {
		t.Errorf("process metadata = %v", processes)
	}
	for _, ph := range []string{"M", "X", "i", "C"} {
		if phases[ph] == 0 {
			t.Errorf("no %q-phase events emitted", ph)
		}
	}
	if !sawRun || !sawPreempt || !sawCounter {
		t.Errorf("missing events: run=%v preempt=%v counter=%v", sawRun, sawPreempt, sawCounter)
	}
}

// TestChromeWriterDefaultSection checks that events before any BeginSection
// land in an implicit "sim" process.
func TestChromeWriterDefaultSection(t *testing.T) {
	w := NewChromeWriter(0) // rate <= 0 keeps raw cycles
	w.Emit(Event{Time: 10, Dur: 10, Type: EvRunSegment, Workload: "w", WIdx: 0,
		FUKind: FUSA, FUIndex: 0, Request: 0, Op: 0})
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"name": "sim"`)) {
		t.Fatalf("default section missing:\n%s", buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"ts": 0`)) {
		t.Fatalf("raw-cycle timestamps expected:\n%s", buf.String())
	}
}
