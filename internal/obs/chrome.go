package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Track layout inside one trace section (= one Chrome "process"): functional
// units get the low thread IDs so Perfetto sorts them to the top, each
// workload gets its own track for stall/request events, and the DMA channel
// sits below.
const (
	tidSA       = 1   // SA i → tidSA + i
	tidVU       = 101 // VU j → tidVU + j
	tidWorkload = 201 // workload w → tidWorkload + w
	tidDMA      = 401
	tidFaults   = 421 // fault-injection and resilience events
	tidVNPU     = 441 // vNPU slice s → tidVNPU + s (throttle/cap enforcement)
	tidCtl      = 481 // control-plane decisions (scale/drain/readmit/recluster)
)

// ChromeWriter is a Tracer that renders the event stream as Chrome
// trace-event JSON ("traceEvents" array format), loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
//
// Sections group events into separate processes: call BeginSection before
// each simulation run sharing the writer (e.g. one section per scheme in a
// CompareSchemes sweep) and the runs appear side by side in the UI. Events
// emitted before any BeginSection land in a default "sim" section.
//
// The writer buffers raw events and renders on WriteTo; under the simulator's
// determinism contract the byte output is stable for a given run, which the
// golden-file test pins down.
type ChromeWriter struct {
	cyclesPerUS float64
	sections    []string
	events      []sectionedEvent
}

type sectionedEvent struct {
	Event
	pid int
	seq int
}

// NewChromeWriter creates a writer converting cycle timestamps to trace
// microseconds at the given rate (CoreConfig.CyclesPerMicrosecond(); 700 for
// the paper's 700 MHz core). Rates <= 0 keep timestamps in raw cycles.
func NewChromeWriter(cyclesPerMicrosecond float64) *ChromeWriter {
	if cyclesPerMicrosecond <= 0 {
		cyclesPerMicrosecond = 1
	}
	return &ChromeWriter{cyclesPerUS: cyclesPerMicrosecond}
}

// BeginSection starts a new process-level grouping; subsequent events belong
// to it.
func (w *ChromeWriter) BeginSection(label string) {
	w.sections = append(w.sections, label)
}

// Emit buffers one event into the current section.
func (w *ChromeWriter) Emit(e Event) {
	if len(w.sections) == 0 {
		w.sections = append(w.sections, "sim")
	}
	w.events = append(w.events, sectionedEvent{Event: e, pid: len(w.sections), seq: len(w.events)})
}

// chromeEvent is one record of the trace-event format.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// tid returns the thread track an event belongs on, with a display name for
// the first encounter, or 0 for track-less records (counters).
func (e sectionedEvent) tid() (tid int, name string) {
	switch e.Type {
	case EvStall, EvRequestDone:
		if e.WIdx >= 0 {
			name = e.Workload
			if name == "" {
				name = fmt.Sprintf("workload %d", e.WIdx)
			}
			return tidWorkload + e.WIdx, name
		}
	case EvDMA:
		return tidDMA, "DMA"
	case EvHBMRebalance:
		return 0, ""
	case EvCoreFail, EvCoreStall, EvHBMDegrade, EvVMemPressure,
		EvHeartbeatMiss, EvCoreDead, EvMigrate, EvMigrateShed:
		return tidFaults, "faults"
	case EvSliceHBM, EvSliceThrottle, EvSliceCapHit:
		s := int(e.Arg0)
		if s < 0 {
			s = 0
		}
		return tidVNPU + s, fmt.Sprintf("vnpu slice %d", s)
	case EvScaleUp, EvScaleDown, EvCoreDrain, EvReadmit, EvRecluster:
		return tidCtl, "ctlplane"
	}
	switch e.FUKind {
	case FUSA:
		return tidSA + e.FUIndex, fmt.Sprintf("SA %d", e.FUIndex)
	case FUVU:
		return tidVU + e.FUIndex, fmt.Sprintf("VU %d", e.FUIndex)
	}
	// Unattributed event: fall back to the workload track.
	if e.WIdx >= 0 {
		return tidWorkload + e.WIdx, e.Workload
	}
	return tidDMA + 1, "misc"
}

// render converts one buffered event.
func (w *ChromeWriter) render(e sectionedEvent) chromeEvent {
	ts := float64(e.Time-e.Dur) / w.cyclesPerUS
	out := chromeEvent{Ts: ts, Pid: e.pid, Name: e.Type.String()}
	tid, _ := e.tid()
	out.Tid = tid

	args := map[string]any{}
	if e.Workload != "" {
		args["workload"] = e.Workload
	}
	if e.Request >= 0 {
		args["request"] = e.Request
	}
	if e.Op >= 0 {
		args["op"] = e.Op
	}

	switch e.Type {
	case EvHBMRebalance:
		// Counter event: draws the allocated-bandwidth curve in Perfetto.
		return chromeEvent{
			Name: "hbm", Ph: "C", Ts: ts, Pid: e.pid,
			Args: map[string]any{"allocated_Bpc": e.Arg1, "tasks": e.Arg0},
		}
	case EvRunSegment:
		// Name run segments after the workload so the FU track reads as the
		// paper's Fig. 16 timeline.
		if e.Workload != "" {
			out.Name = e.Workload
		}
	case EvPreempt:
		args["remaining_cycles"] = e.Arg0
	case EvRequestDone:
		args["latency_cycles"] = e.Arg0
	case EvDMA:
		args["bytes"] = e.Arg0
		args["queue_wait_cycles"] = e.Arg1
	case EvCoreFail, EvHeartbeatMiss:
		if e.Arg0 >= 0 {
			args["core"] = e.Arg0
		}
		if e.Type == EvHeartbeatMiss {
			args["missed"] = e.Arg1
		}
	case EvCoreDead:
		args["core"] = e.Arg0
		args["failed_at_cycle"] = e.Arg1
	case EvHBMDegrade, EvVMemPressure:
		args["factor"] = e.Arg0
	case EvMigrate:
		args["target_core"] = e.Arg0
		args["latency_debt_cycles"] = e.Arg1
	case EvMigrateShed:
		args["attempts"] = e.Arg0
	case EvSliceHBM:
		args["slice"] = e.Arg0
		args["bytes"] = e.Arg1
	case EvSliceThrottle, EvSliceCapHit:
		args["slice"] = e.Arg0
	case EvScaleUp, EvScaleDown:
		args["core"] = e.Arg0
		args["active_cores"] = e.Arg1
	case EvCoreDrain:
		args["core"] = e.Arg0
		args["victims"] = e.Arg1
	case EvReadmit:
		args["target_core"] = e.Arg0
		args["latency_debt_cycles"] = e.Arg1
	case EvRecluster:
		args["drift"] = e.Arg0
		args["observations"] = e.Arg1
	}

	if e.Dur > 0 {
		out.Ph = "X"
		out.Dur = float64(e.Dur) / w.cyclesPerUS
	} else {
		out.Ph = "i"
		out.S = "t"
	}
	if len(args) > 0 {
		out.Args = args
	}
	return out
}

// WriteTo renders the buffered trace as JSON. It implements io.WriterTo.
func (w *ChromeWriter) WriteTo(out io.Writer) (int64, error) {
	f := chromeFile{DisplayTimeUnit: "ms"}

	// Process metadata: one entry per section, in section order.
	for i, label := range w.sections {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: i + 1,
			Args: map[string]any{"name": label},
		})
	}
	// Thread metadata: first-encounter order per (pid, tid).
	type track struct{ pid, tid int }
	seen := map[track]bool{}
	for _, e := range w.events {
		tid, name := e.tid()
		if tid == 0 || name == "" || seen[track{e.pid, tid}] {
			continue
		}
		seen[track{e.pid, tid}] = true
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: e.pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}

	// Events sorted by span start, ties in emission order: spans are emitted
	// at their end, so sorting restores a reader-friendly start ordering
	// while staying deterministic.
	evs := append([]sectionedEvent(nil), w.events...)
	sort.SliceStable(evs, func(i, j int) bool {
		si, sj := evs[i].Time-evs[i].Dur, evs[j].Time-evs[j].Dur
		if si != sj {
			return si < sj
		}
		return evs[i].seq < evs[j].seq
	})
	for _, e := range evs {
		f.TraceEvents = append(f.TraceEvents, w.render(e))
	}

	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	n, err := out.Write(data)
	return int64(n), err
}

// WriteFile renders the trace into path.
func (w *ChromeWriter) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.WriteTo(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing trace %s: %w", path, err)
	}
	return f.Close()
}

// Len returns the number of buffered events.
func (w *ChromeWriter) Len() int { return len(w.events) }
