package obs

import (
	"strings"
	"testing"
)

func TestEventTypeStrings(t *testing.T) {
	for ty := EventType(0); ty < numEventTypes; ty++ {
		s := ty.String()
		if s == "" || strings.HasPrefix(s, "EventType(") {
			t.Errorf("EventType %d has no name", ty)
		}
	}
	if !strings.HasPrefix(EventType(250).String(), "EventType(") {
		t.Error("unknown event type should render its number")
	}
}

func TestRingHoldsTail(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Time: int64(i), Type: EvDispatch})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	for i, e := range evs {
		if e.Time != int64(6+i) {
			t.Fatalf("event %d time = %d, want %d (oldest-first tail)", i, e.Time, 6+i)
		}
	}
}

func TestRingCountAndSumDur(t *testing.T) {
	r := NewRing(16)
	r.Emit(Event{Type: EvRunSegment, Dur: 100, WIdx: 0})
	r.Emit(Event{Type: EvRunSegment, Dur: 50, WIdx: 1})
	r.Emit(Event{Type: EvRunSegment, Dur: 25, WIdx: 0})
	r.Emit(Event{Type: EvPreempt, WIdx: 0})
	if got := r.Count(EvRunSegment); got != 3 {
		t.Fatalf("Count(run) = %d", got)
	}
	if got := r.Count(EvPreempt); got != 1 {
		t.Fatalf("Count(preempt) = %d", got)
	}
	if got := r.SumDur(EvRunSegment, -1); got != 175 {
		t.Fatalf("SumDur(all) = %d", got)
	}
	if got := r.SumDur(EvRunSegment, 0); got != 125 {
		t.Fatalf("SumDur(w0) = %d", got)
	}
}

func TestRingRejectsZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func TestMulti(t *testing.T) {
	a, b := NewRing(8), NewRing(8)
	m := Multi(nil, a, nil, b)
	m.Emit(Event{Type: EvDispatch})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out missed a sink: %d/%d", a.Len(), b.Len())
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi of no sinks must stay nil (the disabled fast path)")
	}
	if one := Multi(nil, a); one != Tracer(a) {
		t.Fatal("Multi of one sink should return it directly")
	}
}

func TestCounterLogCSV(t *testing.T) {
	l := NewCounterLog()
	l.BeginSection("V10-Full")
	l.Add(CounterRow{Cycle: 100, Workload: "BERT-b32", Requests: 2, ActiveCycles: 90,
		SABusyCycles: 60, VUBusyCycles: 20, Preemptions: 1, SwitchCycles: 384,
		HBMBytes: 1234.5, CtxBytes: 98304, QueueDepth: 3})
	var sb strings.Builder
	if err := l.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want header + 1 row:\n%s", len(lines), sb.String())
	}
	if lines[0] != strings.Join(csvHeader, ",") {
		t.Fatalf("header = %q", lines[0])
	}
	// %.0f rounds half to even: 1234.5 HBM bytes renders as 1234.
	want := "V10-Full,100,BERT-b32,2,90,60,20,1,384,1234,98304,3"
	if lines[1] != want {
		t.Fatalf("row = %q, want %q", lines[1], want)
	}
}

func TestCounterLogCSVQuoting(t *testing.T) {
	l := NewCounterLog()
	l.Add(CounterRow{Workload: `odd,"name"`})
	var sb strings.Builder
	if err := l.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"odd,""name"""`) {
		t.Fatalf("workload not CSV-quoted: %s", sb.String())
	}
}

func TestCounterLogJSON(t *testing.T) {
	l := NewCounterLog()
	var sb strings.Builder
	if err := l.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Fatalf("empty log JSON = %q, want []", sb.String())
	}
	l.BeginSection("V10-Base")
	l.Add(CounterRow{Cycle: 7, Workload: "NCF-b32"})
	sb.Reset()
	if err := l.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"scheme": "V10-Base"`, `"cycle": 7`, `"workload": "NCF-b32"`} {
		if !strings.Contains(sb.String(), frag) {
			t.Fatalf("JSON missing %s:\n%s", frag, sb.String())
		}
	}
}
