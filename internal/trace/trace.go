// Package trace models compiled DNN inference workloads the way V10's
// hardware observes them: a stream of tensor operators, each targeting either
// the systolic array (SA) or the vector unit (VU), annotated with compute
// cycles, DMA/infeed stall cycles, FLOPs, off-chip HBM traffic, and vector
// memory footprint. A request is a DAG of such operators; execution follows
// the compiled sequential (topological) order, matching the paper's §3.2
// observation that operators within one workload execute sequentially. The
// DAG structure itself is used for the Fig. 6 critical-path study.
package trace

import (
	"fmt"
	"sort"
)

// Kind selects the functional unit an operator executes on.
type Kind uint8

const (
	// KindSA is a systolic-array operator (matmul, convolution).
	KindSA Kind = iota
	// KindVU is a vector-unit operator (element-wise, reduction, shuffle).
	KindVU
)

// String returns "SA" or "VU".
func (k Kind) String() string {
	if k == KindSA {
		return "SA"
	}
	return "VU"
}

// Op is one tensor operator as seen by the NPU front end.
type Op struct {
	ID      int   // index within the graph
	Kind    Kind  // which FU type executes it
	Compute int64 // cycles the op occupies the FU
	Stall   int64 // pre-issue cycles waiting on DMA/infeed (no FU held)
	// Efficiency is the fraction of Compute doing useful work; the rest are
	// intra-op pipeline bubbles (weight-load turnaround, padding drain) that
	// hold the FU but cannot be harvested by a collocated tenant. Zero means
	// 1.0 (fully efficient).
	Efficiency float64
	FLOPs      float64 // floating point operations performed
	HBMBytes   float64 // off-chip traffic generated while executing
	VMemBytes  int64   // vector-memory working set
	Deps       []int   // IDs of operators this one depends on
}

// Eff returns the operator's efficiency with the zero-value defaulting to 1.
func (o Op) Eff() float64 {
	if o.Efficiency <= 0 || o.Efficiency > 1 {
		return 1
	}
	return o.Efficiency
}

// Duration returns the operator's uncontended duration in cycles.
func (o Op) Duration() int64 { return o.Stall + o.Compute }

// Graph is the operator DAG for one inference request.
type Graph struct {
	Ops []Op

	// DepsBuf is scratch backing for the Ops' Deps slices, owned by
	// buffer-reusing generators (NewWorkloadReusable): pooling every
	// single-entry Deps slice in one array lets a generator rebuild the graph
	// per request without per-op allocations. Ordinary consumers ignore it.
	DepsBuf []int
}

// Validate checks that IDs are dense, dependencies are in range, and the
// dependency relation only points backwards (which guarantees acyclicity for
// compiler-emitted streams).
func (g *Graph) Validate() error {
	for i, op := range g.Ops {
		if op.ID != i {
			return fmt.Errorf("trace: op at index %d has ID %d", i, op.ID)
		}
		if op.Compute < 0 || op.Stall < 0 {
			return fmt.Errorf("trace: op %d has negative timing", i)
		}
		for _, d := range op.Deps {
			if d < 0 || d >= len(g.Ops) {
				return fmt.Errorf("trace: op %d dependency %d out of range", i, d)
			}
			if d >= i {
				return fmt.Errorf("trace: op %d depends on later op %d", i, d)
			}
		}
	}
	return nil
}

// SerialCycles returns the total execution time when every operator runs
// back-to-back on a single-tenant core (the compiled sequential schedule).
func (g *Graph) SerialCycles() int64 {
	var t int64
	for _, op := range g.Ops {
		t += op.Duration()
	}
	return t
}

// CriticalPathCycles returns the length of the longest dependency path, i.e.
// the lower bound on execution time if all independent operators ran in
// parallel (the paper's Fig. 6 idealized compiler parallelism).
func (g *Graph) CriticalPathCycles() int64 {
	finish := make([]int64, len(g.Ops))
	var longest int64
	for i, op := range g.Ops {
		var start int64
		for _, d := range op.Deps {
			if finish[d] > start {
				start = finish[d]
			}
		}
		finish[i] = start + op.Duration()
		if finish[i] > longest {
			longest = finish[i]
		}
	}
	return longest
}

// IdealSpeedup returns SerialCycles / CriticalPathCycles, the theoretical
// maximum speedup from intra-workload operator parallelism (Fig. 6).
func (g *Graph) IdealSpeedup() float64 {
	cp := g.CriticalPathCycles()
	if cp == 0 {
		return 1
	}
	return float64(g.SerialCycles()) / float64(cp)
}

// TotalFLOPs sums FLOPs across operators.
func (g *Graph) TotalFLOPs() float64 {
	s := 0.0
	for _, op := range g.Ops {
		s += op.FLOPs
	}
	return s
}

// TotalHBMBytes sums HBM traffic across operators.
func (g *Graph) TotalHBMBytes() float64 {
	s := 0.0
	for _, op := range g.Ops {
		s += op.HBMBytes
	}
	return s
}

// Stats are the per-request operator statistics used for characterization
// and as collocation features (§3.4).
type Stats struct {
	NumSA, NumVU         int
	SACycles, VUCycles   int64   // total FU-occupancy cycles per FU type
	UsefulSACycles       float64 // occupancy × efficiency
	UsefulVUCycles       float64
	StallCycles          int64
	MeanSALen, MeanVULen float64 // cycles
	MinSALen, MaxSALen   int64
	MinVULen, MaxVULen   int64
	FLOPs                float64
	HBMBytes             float64
	MaxVMemBytes         int64
	SerialCycles         int64
	CriticalPathCycles   int64
}

// ComputeStats extracts Stats from the graph.
func (g *Graph) ComputeStats() Stats {
	var s Stats
	s.MinSALen, s.MinVULen = -1, -1
	for _, op := range g.Ops {
		s.StallCycles += op.Stall
		s.FLOPs += op.FLOPs
		s.HBMBytes += op.HBMBytes
		if op.VMemBytes > s.MaxVMemBytes {
			s.MaxVMemBytes = op.VMemBytes
		}
		switch op.Kind {
		case KindSA:
			s.NumSA++
			s.SACycles += op.Compute
			s.UsefulSACycles += float64(op.Compute) * op.Eff()
			if s.MinSALen < 0 || op.Compute < s.MinSALen {
				s.MinSALen = op.Compute
			}
			if op.Compute > s.MaxSALen {
				s.MaxSALen = op.Compute
			}
		case KindVU:
			s.NumVU++
			s.VUCycles += op.Compute
			s.UsefulVUCycles += float64(op.Compute) * op.Eff()
			if s.MinVULen < 0 || op.Compute < s.MinVULen {
				s.MinVULen = op.Compute
			}
			if op.Compute > s.MaxVULen {
				s.MaxVULen = op.Compute
			}
		}
	}
	if s.NumSA > 0 {
		s.MeanSALen = float64(s.SACycles) / float64(s.NumSA)
	}
	if s.NumVU > 0 {
		s.MeanVULen = float64(s.VUCycles) / float64(s.NumVU)
	}
	if s.MinSALen < 0 {
		s.MinSALen = 0
	}
	if s.MinVULen < 0 {
		s.MinVULen = 0
	}
	s.SerialCycles = g.SerialCycles()
	s.CriticalPathCycles = g.CriticalPathCycles()
	return s
}

// Linearize returns the operator execution order used by the schedulers: the
// compiled sequential stream. Operators are emitted in topological order; for
// generator-produced graphs this is simply ID order, which Validate enforces.
func (g *Graph) Linearize() []Op {
	return g.LinearizeInto(nil)
}

// LinearizeInto is Linearize appending into buf (reused across requests by
// the scheduler's hot path; pass buf[:0] to recycle a previous stream).
// Generated and tiled graphs already carry dense ascending IDs, so the
// common case is a straight copy with no sort.
func (g *Graph) LinearizeInto(buf []Op) []Op {
	out := append(buf, g.Ops...)
	sorted := true
	for i := 1; i < len(out); i++ {
		if out[i].ID < out[i-1].ID {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	}
	return out
}
