package trace

import (
	"fmt"

	"v10/internal/mathx"
)

// Workload is a deployed inference service: a model at a fixed batch size
// that repeatedly serves requests. Request graphs vary slightly from request
// to request (input-dependent operator lengths), produced deterministically
// by the generator.
type Workload struct {
	Name     string  // display name, e.g. "BERT-b32"
	Model    string  // model family, e.g. "BERT"
	Batch    int     // inference batch size
	Priority float64 // relative scheduling priority (> 0); 1 is default

	gen func(request int) *Graph
}

// NewWorkload builds a workload around a request-graph generator. gen must be
// deterministic in its argument. Priority defaults to 1.
func NewWorkload(name, model string, batch int, gen func(request int) *Graph) *Workload {
	if gen == nil {
		panic("trace: nil workload generator")
	}
	return &Workload{Name: name, Model: model, Batch: batch, Priority: 1, gen: gen}
}

// WithPriority returns a shallow copy of w with the given priority.
func (w *Workload) WithPriority(p float64) *Workload {
	if p <= 0 {
		panic(fmt.Sprintf("trace: non-positive priority %v", p))
	}
	c := *w
	c.Priority = p
	return &c
}

// Request returns the operator graph for the i-th request (0-based).
func (w *Workload) Request(i int) *Graph {
	return w.gen(i)
}

// TileForVMem rewrites g so that no operator's vector-memory footprint
// exceeds partition bytes. An oversized operator is split into k equal tiles
// executed back to back; each reload of intermediate data from HBM loses
// on-chip reuse, so total HBM traffic grows by reloadFactor per extra tile
// (the Fig. 24 effect). partition <= 0 returns g unchanged.
func TileForVMem(g *Graph, partition int64, reloadFactor float64) *Graph {
	if partition <= 0 {
		return g
	}
	needsTiling := false
	for _, op := range g.Ops {
		if op.VMemBytes > partition {
			needsTiling = true
			break
		}
	}
	if !needsTiling {
		return g
	}
	out := &Graph{Ops: make([]Op, 0, len(g.Ops))}
	// remap[oldID] = new ID of the final tile of that operator.
	remap := make([]int, len(g.Ops))
	for _, op := range g.Ops {
		k := int64(1)
		if op.VMemBytes > partition {
			k = (op.VMemBytes + partition - 1) / partition
		}
		deps := make([]int, len(op.Deps))
		for i, d := range op.Deps {
			deps[i] = remap[d]
		}
		totalHBM := op.HBMBytes * (1 + reloadFactor*float64(k-1))
		for t := int64(0); t < k; t++ {
			tile := Op{
				ID:         len(out.Ops),
				Kind:       op.Kind,
				Compute:    op.Compute / k,
				Stall:      op.Stall / k,
				Efficiency: op.Efficiency,
				FLOPs:      op.FLOPs / float64(k),
				HBMBytes:   totalHBM / float64(k),
				VMemBytes:  mathx.MinInt64(op.VMemBytes, partition),
				Deps:       deps,
			}
			if t == 0 {
				// Distribute rounding remainders onto the first tile.
				tile.Compute += op.Compute % k
				tile.Stall += op.Stall % k
			}
			out.Ops = append(out.Ops, tile)
			deps = []int{tile.ID} // later tiles chain on the previous tile
		}
		remap[op.ID] = len(out.Ops) - 1
	}
	return out
}
