package trace

import (
	"fmt"

	"v10/internal/mathx"
)

// Workload is a deployed inference service: a model at a fixed batch size
// that repeatedly serves requests. Request graphs vary slightly from request
// to request (input-dependent operator lengths), produced deterministically
// by the generator.
type Workload struct {
	Name     string  // display name, e.g. "BERT-b32"
	Model    string  // model family, e.g. "BERT"
	Batch    int     // inference batch size
	Priority float64 // relative scheduling priority (> 0); 1 is default

	gen     func(request int) *Graph
	genInto func(request int, g *Graph) *Graph
}

// NewWorkload builds a workload around a request-graph generator. gen must be
// deterministic in its argument. Priority defaults to 1.
func NewWorkload(name, model string, batch int, gen func(request int) *Graph) *Workload {
	if gen == nil {
		panic("trace: nil workload generator")
	}
	return &Workload{Name: name, Model: model, Batch: batch, Priority: 1, gen: gen}
}

// WithPriority returns a shallow copy of w with the given priority.
func (w *Workload) WithPriority(p float64) *Workload {
	if p <= 0 {
		panic(fmt.Sprintf("trace: non-positive priority %v", p))
	}
	c := *w
	c.Priority = p
	return &c
}

// NewWorkloadReusable builds a workload around a buffer-reusing generator:
// genInto must produce the i-th request graph into g (reusing g.Ops and
// g.DepsBuf when non-nil; allocating a fresh graph when g is nil) and return
// it. genInto must be deterministic in its request argument and stateless
// apart from the passed-in buffer, so concurrent callers with distinct
// scratch graphs are safe (the fleet runs cores in parallel against shared
// Workload values).
func NewWorkloadReusable(name, model string, batch int, genInto func(request int, g *Graph) *Graph) *Workload {
	if genInto == nil {
		panic("trace: nil workload generator")
	}
	return &Workload{
		Name: name, Model: model, Batch: batch, Priority: 1,
		gen:     func(i int) *Graph { return genInto(i, nil) },
		genInto: genInto,
	}
}

// Request returns the operator graph for the i-th request (0-based).
func (w *Workload) Request(i int) *Graph {
	return w.gen(i)
}

// RequestInto returns the i-th request graph, reusing the caller-owned
// scratch graph g when the workload's generator supports it. The boolean
// reports whether the caller owns the returned graph's storage: true means
// it is private to the caller (safe to alias its Ops and to pass back as
// scratch for the next request), false means the graph came from a plain
// generator and may be shared — copy before mutating or retaining.
func (w *Workload) RequestInto(i int, g *Graph) (*Graph, bool) {
	if w.genInto != nil {
		return w.genInto(i, g), true
	}
	return w.gen(i), false
}

// TileForVMem rewrites g so that no operator's vector-memory footprint
// exceeds partition bytes. An oversized operator is split into k equal tiles
// executed back to back; each reload of intermediate data from HBM loses
// on-chip reuse, so total HBM traffic grows by reloadFactor per extra tile
// (the Fig. 24 effect). partition <= 0 returns g unchanged.
func TileForVMem(g *Graph, partition int64, reloadFactor float64) *Graph {
	if partition <= 0 {
		return g
	}
	needsTiling := false
	for _, op := range g.Ops {
		if op.VMemBytes > partition {
			needsTiling = true
			break
		}
	}
	if !needsTiling {
		return g
	}
	out := &Graph{Ops: make([]Op, 0, len(g.Ops))}
	// remap[oldID] = new ID of the final tile of that operator.
	remap := make([]int, len(g.Ops))
	for _, op := range g.Ops {
		k := int64(1)
		if op.VMemBytes > partition {
			k = (op.VMemBytes + partition - 1) / partition
		}
		deps := make([]int, len(op.Deps))
		for i, d := range op.Deps {
			deps[i] = remap[d]
		}
		totalHBM := op.HBMBytes * (1 + reloadFactor*float64(k-1))
		for t := int64(0); t < k; t++ {
			tile := Op{
				ID:         len(out.Ops),
				Kind:       op.Kind,
				Compute:    op.Compute / k,
				Stall:      op.Stall / k,
				Efficiency: op.Efficiency,
				FLOPs:      op.FLOPs / float64(k),
				HBMBytes:   totalHBM / float64(k),
				VMemBytes:  mathx.MinInt64(op.VMemBytes, partition),
				Deps:       deps,
			}
			if t == 0 {
				// Distribute rounding remainders onto the first tile.
				tile.Compute += op.Compute % k
				tile.Stall += op.Stall % k
			}
			out.Ops = append(out.Ops, tile)
			deps = []int{tile.ID} // later tiles chain on the previous tile
		}
		remap[op.ID] = len(out.Ops) - 1
	}
	return out
}
