package trace

import (
	"testing"
	"testing/quick"

	"v10/internal/mathx"
)

func chainGraph(lens ...int64) *Graph {
	g := &Graph{}
	for i, l := range lens {
		op := Op{ID: i, Kind: KindSA, Compute: l}
		if i > 0 {
			op.Deps = []int{i - 1}
		}
		g.Ops = append(g.Ops, op)
	}
	return g
}

func TestValidateAcceptsChain(t *testing.T) {
	g := chainGraph(10, 20, 30)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
}

func TestValidateRejectsBadID(t *testing.T) {
	g := &Graph{Ops: []Op{{ID: 1}}}
	if g.Validate() == nil {
		t.Fatal("bad ID accepted")
	}
}

func TestValidateRejectsForwardDep(t *testing.T) {
	g := &Graph{Ops: []Op{{ID: 0, Deps: []int{1}}, {ID: 1}}}
	if g.Validate() == nil {
		t.Fatal("forward dependency accepted")
	}
}

func TestValidateRejectsOutOfRangeDep(t *testing.T) {
	g := &Graph{Ops: []Op{{ID: 0, Deps: []int{5}}}}
	if g.Validate() == nil {
		t.Fatal("out-of-range dependency accepted")
	}
}

func TestValidateRejectsNegativeTiming(t *testing.T) {
	g := &Graph{Ops: []Op{{ID: 0, Compute: -1}}}
	if g.Validate() == nil {
		t.Fatal("negative compute accepted")
	}
}

func TestSerialAndCriticalPathChain(t *testing.T) {
	g := chainGraph(10, 20, 30)
	if g.SerialCycles() != 60 {
		t.Fatalf("SerialCycles = %d, want 60", g.SerialCycles())
	}
	if g.CriticalPathCycles() != 60 {
		t.Fatalf("chain critical path = %d, want 60", g.CriticalPathCycles())
	}
	if g.IdealSpeedup() != 1 {
		t.Fatalf("chain speedup = %v, want 1", g.IdealSpeedup())
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	// 0 → {1, 2} → 3, with branch 1 longer.
	g := &Graph{Ops: []Op{
		{ID: 0, Compute: 10},
		{ID: 1, Compute: 50, Deps: []int{0}},
		{ID: 2, Compute: 5, Deps: []int{0}},
		{ID: 3, Compute: 10, Deps: []int{1, 2}},
	}}
	if cp := g.CriticalPathCycles(); cp != 70 {
		t.Fatalf("diamond critical path = %d, want 70", cp)
	}
	want := 75.0 / 70.0
	if sp := g.IdealSpeedup(); !almostEq(sp, want, 1e-12) {
		t.Fatalf("diamond speedup = %v, want %v", sp, want)
	}
}

func TestCriticalPathIncludesStall(t *testing.T) {
	g := &Graph{Ops: []Op{{ID: 0, Compute: 10, Stall: 5}}}
	if g.CriticalPathCycles() != 15 || g.SerialCycles() != 15 {
		t.Fatal("stall cycles not counted in durations")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := &Graph{}
	if g.SerialCycles() != 0 || g.CriticalPathCycles() != 0 || g.IdealSpeedup() != 1 {
		t.Fatal("empty graph should be all zeros with speedup 1")
	}
}

func TestComputeStats(t *testing.T) {
	g := &Graph{Ops: []Op{
		{ID: 0, Kind: KindSA, Compute: 100, Stall: 10, FLOPs: 1000, HBMBytes: 64, VMemBytes: 1 << 20},
		{ID: 1, Kind: KindVU, Compute: 20, Deps: []int{0}, FLOPs: 40, HBMBytes: 8, VMemBytes: 1 << 10},
		{ID: 2, Kind: KindSA, Compute: 300, Deps: []int{1}},
	}}
	s := g.ComputeStats()
	if s.NumSA != 2 || s.NumVU != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.SACycles != 400 || s.VUCycles != 20 || s.StallCycles != 10 {
		t.Fatalf("cycle totals wrong: %+v", s)
	}
	if s.MeanSALen != 200 || s.MinSALen != 100 || s.MaxSALen != 300 {
		t.Fatalf("SA length stats wrong: %+v", s)
	}
	if s.MeanVULen != 20 || s.MinVULen != 20 || s.MaxVULen != 20 {
		t.Fatalf("VU length stats wrong: %+v", s)
	}
	if s.FLOPs != 1040 || s.HBMBytes != 72 || s.MaxVMemBytes != 1<<20 {
		t.Fatalf("resource stats wrong: %+v", s)
	}
	if s.SerialCycles != 430 {
		t.Fatalf("serial cycles = %d", s.SerialCycles)
	}
}

func TestStatsEmptyKindsZeroed(t *testing.T) {
	g := &Graph{Ops: []Op{{ID: 0, Kind: KindSA, Compute: 10}}}
	s := g.ComputeStats()
	if s.MeanVULen != 0 || s.MinVULen != 0 || s.MaxVULen != 0 {
		t.Fatalf("VU stats should be zero with no VU ops: %+v", s)
	}
}

func TestKindString(t *testing.T) {
	if KindSA.String() != "SA" || KindVU.String() != "VU" {
		t.Fatal("Kind.String wrong")
	}
}

func TestWorkloadRequestAndPriority(t *testing.T) {
	w := NewWorkload("BERT-b32", "BERT", 32, func(i int) *Graph {
		return chainGraph(int64(i + 1))
	})
	if w.Priority != 1 {
		t.Fatal("default priority should be 1")
	}
	if got := w.Request(4).Ops[0].Compute; got != 5 {
		t.Fatalf("generator not wired: %d", got)
	}
	w2 := w.WithPriority(0.25)
	if w2.Priority != 0.25 || w.Priority != 1 {
		t.Fatal("WithPriority must copy")
	}
}

func TestWithPriorityPanicsOnNonPositive(t *testing.T) {
	w := NewWorkload("x", "X", 1, func(int) *Graph { return &Graph{} })
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive priority accepted")
		}
	}()
	w.WithPriority(0)
}

func TestNewWorkloadNilGenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil generator accepted")
		}
	}()
	NewWorkload("x", "X", 1, nil)
}

func TestTileForVMemNoChangeWhenFits(t *testing.T) {
	g := &Graph{Ops: []Op{{ID: 0, Kind: KindSA, Compute: 100, VMemBytes: 10}}}
	out := TileForVMem(g, 100, 0.5)
	if out != g {
		t.Fatal("fitting graph should be returned unchanged")
	}
}

func TestTileForVMemSplitsOversized(t *testing.T) {
	g := &Graph{Ops: []Op{
		{ID: 0, Kind: KindSA, Compute: 90, Stall: 9, FLOPs: 900, HBMBytes: 300, VMemBytes: 300},
		{ID: 1, Kind: KindVU, Compute: 10, Deps: []int{0}, VMemBytes: 50},
	}}
	out := TileForVMem(g, 100, 0.5)
	if err := out.Validate(); err != nil {
		t.Fatalf("tiled graph invalid: %v", err)
	}
	if len(out.Ops) != 4 { // 3 tiles + the VU op
		t.Fatalf("tile count = %d, want 4", len(out.Ops))
	}
	// Compute conserved.
	var compute int64
	for _, op := range out.Ops {
		compute += op.Compute
	}
	if compute != 100 {
		t.Fatalf("compute not conserved: %d", compute)
	}
	// HBM traffic amplified: 300 * (1 + 0.5*2) = 600 for the split op.
	if !almostEq(out.TotalHBMBytes(), 600, 1e-9) {
		t.Fatalf("HBM bytes = %v, want 600", out.TotalHBMBytes())
	}
	// Dependent op must now depend on the last tile.
	last := out.Ops[3]
	if len(last.Deps) != 1 || last.Deps[0] != 2 {
		t.Fatalf("dependency remap wrong: %+v", last)
	}
	// Footprints capped at the partition size.
	for _, op := range out.Ops {
		if op.VMemBytes > 100 {
			t.Fatalf("tile footprint %d exceeds partition", op.VMemBytes)
		}
	}
}

func TestTileForVMemZeroPartitionNoop(t *testing.T) {
	g := &Graph{Ops: []Op{{ID: 0, VMemBytes: 1 << 30}}}
	if TileForVMem(g, 0, 0.5) != g {
		t.Fatal("partition<=0 must be a no-op")
	}
}

// Property: tiling conserves compute+stall cycles and never shrinks HBM
// traffic, and the result always validates.
func TestTileForVMemConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 1 + rng.Intn(20)
		g := &Graph{}
		for i := 0; i < n; i++ {
			op := Op{
				ID:        i,
				Kind:      Kind(rng.Intn(2)),
				Compute:   int64(rng.Intn(10000)),
				Stall:     int64(rng.Intn(1000)),
				HBMBytes:  rng.Uniform(0, 1e6),
				VMemBytes: int64(rng.Intn(1 << 22)),
			}
			if i > 0 && rng.Float64() < 0.8 {
				op.Deps = []int{rng.Intn(i)}
			}
			g.Ops = append(g.Ops, op)
		}
		partition := int64(1024 + rng.Intn(1<<20))
		out := TileForVMem(g, partition, 0.5)
		if out.Validate() != nil {
			return false
		}
		var gc, oc int64
		for _, op := range g.Ops {
			gc += op.Compute + op.Stall
		}
		for _, op := range out.Ops {
			oc += op.Compute + op.Stall
			if op.VMemBytes > partition {
				return false
			}
		}
		return gc == oc && out.TotalHBMBytes() >= g.TotalHBMBytes()-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLinearizePreservesOps(t *testing.T) {
	g := chainGraph(1, 2, 3)
	lin := g.Linearize()
	if len(lin) != 3 || lin[0].Compute != 1 || lin[2].Compute != 3 {
		t.Fatal("Linearize broken")
	}
	lin[0].Compute = 99
	if g.Ops[0].Compute == 99 {
		t.Fatal("Linearize must copy")
	}
}

func almostEq(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
