package trace

import (
	"bytes"
	"testing"
)

// FuzzReadJSON hardens the trace parser against malformed input: it must
// either reject the bytes or produce a file that validates and round-trips.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	if err := Record(NewWorkload("w", "W", 1, func(int) *Graph {
		return &Graph{Ops: []Op{{ID: 0, Kind: KindSA, Compute: 10}}}
	}), 2).WriteJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"format_version":1,"name":"x","requests":[{"Ops":null}]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tf, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be usable.
		if err := tf.Validate(); err != nil {
			t.Fatalf("accepted file fails validation: %v", err)
		}
		w, err := tf.Workload()
		if err != nil {
			t.Fatalf("accepted file fails to build a workload: %v", err)
		}
		if g := w.Request(0); g.Validate() != nil {
			t.Fatal("replayed request invalid")
		}
		var out bytes.Buffer
		if err := tf.WriteJSON(&out); err != nil {
			t.Fatalf("accepted file fails to re-serialize: %v", err)
		}
	})
}
