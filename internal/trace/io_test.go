package trace

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func recordable() *Workload {
	return NewWorkload("toy-b4", "Toy", 4, func(i int) *Graph {
		g := &Graph{}
		for k := 0; k <= i%3; k++ {
			op := Op{ID: k, Kind: Kind(k % 2), Compute: int64(100 * (k + 1)), HBMBytes: 64}
			if k > 0 {
				op.Deps = []int{k - 1}
			}
			g.Ops = append(g.Ops, op)
		}
		return g
	})
}

func TestRecordRoundTrip(t *testing.T) {
	f := Record(recordable(), 5)
	if len(f.Requests) != 5 || f.Name != "toy-b4" || f.Model != "Toy" || f.Batch != 4 {
		t.Fatalf("record metadata wrong: %+v", f)
	}

	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != 5 {
		t.Fatalf("round trip lost requests: %d", len(back.Requests))
	}
	for i := range f.Requests {
		a, b := f.Requests[i], back.Requests[i]
		if len(a.Ops) != len(b.Ops) {
			t.Fatalf("request %d op count differs", i)
		}
		for j := range a.Ops {
			if a.Ops[j].Compute != b.Ops[j].Compute || a.Ops[j].Kind != b.Ops[j].Kind {
				t.Fatalf("request %d op %d differs", i, j)
			}
		}
	}
}

func TestFileWorkloadReplaysCyclically(t *testing.T) {
	f := Record(recordable(), 3)
	w, err := f.Workload()
	if err != nil {
		t.Fatal(err)
	}
	// Request 0 and request 3 must be identical (cyclic replay).
	g0, g3 := w.Request(0), w.Request(3)
	if len(g0.Ops) != len(g3.Ops) {
		t.Fatal("cyclic replay broken")
	}
	if w.Name != "toy-b4" || w.Batch != 4 {
		t.Fatal("identity lost")
	}
}

func TestFilePriorityPreserved(t *testing.T) {
	w := recordable().WithPriority(0.25)
	f := Record(w, 2)
	back, err := f.Workload()
	if err != nil {
		t.Fatal(err)
	}
	if back.Priority != 0.25 {
		t.Fatalf("priority = %v, want 0.25", back.Priority)
	}
}

func TestValidateRejectsBadFiles(t *testing.T) {
	good := Record(recordable(), 2)
	cases := []func(*File){
		func(f *File) { f.FormatVersion = 99 },
		func(f *File) { f.Name = "" },
		func(f *File) { f.Requests = nil },
		func(f *File) { f.Requests[0] = nil },
		func(f *File) { f.Requests[0] = &Graph{Ops: []Op{{ID: 5}}} },
	}
	for i, mutate := range cases {
		f := Record(recordable(), 2)
		*f = *good
		f.Requests = append([]*Graph(nil), good.Requests...)
		mutate(f)
		if f.Validate() == nil {
			t.Errorf("bad file %d accepted", i)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"format_version":1,"name":"x","requests":[]}`)); err == nil {
		t.Fatal("empty requests accepted")
	}
}

func TestLoadShippedSampleTrace(t *testing.T) {
	f, err := os.Open("testdata/mnist-b32.trace.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tf, err := ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if tf.Model != "MNIST" || tf.Batch != 32 || len(tf.Requests) != 3 {
		t.Fatalf("sample trace metadata wrong: %+v", tf)
	}
	w, err := tf.Workload()
	if err != nil {
		t.Fatal(err)
	}
	st := w.Request(0).ComputeStats()
	if st.NumSA == 0 || st.NumVU == 0 {
		t.Fatal("sample trace has no operators")
	}
}
