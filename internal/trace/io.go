package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// File is a recorded operator trace: a workload identity plus a finite set
// of request graphs. The paper's methodology replays instruction traces
// captured on real TPUs; File is this repository's equivalent container,
// letting users capture a generator's output (or author traces by hand) and
// replay them deterministically.
type File struct {
	FormatVersion int      `json:"format_version"`
	Name          string   `json:"name"`
	Model         string   `json:"model"`
	Batch         int      `json:"batch"`
	Priority      float64  `json:"priority,omitempty"`
	Requests      []*Graph `json:"requests"`
}

// FormatVersion identifies the on-disk trace format.
const FormatVersion = 1

// Record captures n request graphs from the workload into a replayable File.
func Record(w *Workload, n int) *File {
	if n < 1 {
		n = 1
	}
	f := &File{
		FormatVersion: FormatVersion,
		Name:          w.Name,
		Model:         w.Model,
		Batch:         w.Batch,
		Priority:      w.Priority,
		Requests:      make([]*Graph, n),
	}
	for i := 0; i < n; i++ {
		f.Requests[i] = w.Request(i)
	}
	return f
}

// Validate checks the file's integrity (version, non-empty, valid graphs).
func (f *File) Validate() error {
	if f.FormatVersion != FormatVersion {
		return fmt.Errorf("trace: unsupported format version %d", f.FormatVersion)
	}
	if f.Name == "" {
		return fmt.Errorf("trace: file has no workload name")
	}
	if len(f.Requests) == 0 {
		return fmt.Errorf("trace: file %q has no requests", f.Name)
	}
	for i, g := range f.Requests {
		if g == nil {
			return fmt.Errorf("trace: request %d is nil", i)
		}
		if err := g.Validate(); err != nil {
			return fmt.Errorf("trace: request %d: %w", i, err)
		}
	}
	return nil
}

// Workload wraps the recorded requests as a workload that replays them
// cyclically (request i serves graph i mod len).
func (f *File) Workload() (*Workload, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	reqs := f.Requests
	w := NewWorkload(f.Name, f.Model, f.Batch, func(i int) *Graph {
		return reqs[i%len(reqs)]
	})
	if f.Priority > 0 {
		w = w.WithPriority(f.Priority)
	}
	return w, nil
}

// WriteJSON serializes the trace.
func (f *File) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// ReadJSON parses and validates a trace file.
func ReadJSON(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: decoding: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}
