package v10

import (
	"v10/internal/npu"
	"v10/internal/trace"
	"v10/internal/workload"
)

// Traffic generation (see internal/workload): a deterministic, seeded engine
// that turns per-tenant traffic specs — Poisson, uniform, diurnal, MMPP
// flash-crowd, or production-trace replay — into explicit absolute
// arrival-cycle schedules for FleetOptions.Arrivals or
// Options.ArrivalCycles, plus an LLM prefill/decode tenant-mix composer for
// FlexNPU-style collocation studies.

// TrafficProcess names a stochastic arrival process.
type TrafficProcess = workload.Process

// Arrival processes.
const (
	// TrafficPoisson is a homogeneous Poisson stream at RateHz.
	TrafficPoisson = workload.Poisson
	// TrafficUniform spaces arrivals evenly at RateHz.
	TrafficUniform = workload.Uniform
	// TrafficDiurnal modulates a Poisson stream with a cosine day-night
	// cycle (Amplitude, PeriodCycles, PhaseFrac).
	TrafficDiurnal = workload.Diurnal
	// TrafficMMPP is a two-state Markov-modulated Poisson process: calm
	// base rate with BurstFactor-times flash crowds (BurstFrac of time).
	TrafficMMPP = workload.MMPP
	// TrafficReplay loops a recorded inter-arrival-gap trace (GapsSec),
	// optionally rate-normalized.
	TrafficReplay = workload.Replay
)

// ParseTrafficProcess maps a CLI spelling ("poisson", "uniform", "diurnal",
// "mmpp", "trace") to a TrafficProcess.
func ParseTrafficProcess(s string) (TrafficProcess, error) { return workload.ParseProcess(s) }

// TrafficSpec describes one tenant's arrival stream for a TrafficEngine.
type TrafficSpec = workload.Spec

// TrafficEngine converts TrafficSpecs into per-tenant arrival-cycle
// schedules, deterministically in (Seed, tenant index) and independent of
// fleet size or evaluation order.
type TrafficEngine = workload.Engine

// TrafficTrace is a parsed production trace: named streams of
// inter-arrival gaps in seconds, replayable via TrafficSpec.
type TrafficTrace = workload.Trace

// ReadTraceFile parses a trace file: '#' comments, then one stream per line
// as "<name> <gap-seconds>...".
func ReadTraceFile(path string) (*TrafficTrace, error) { return workload.ReadTraceFile(path) }

// TenantClass is one homogeneous tenant group inside a TenantMix.
type TenantClass = workload.Class

// TenantMix is a composed multi-class tenant population: workloads aligned
// index-for-index with their traffic specs.
type TenantMix = workload.Mix

// ComposeMix interleaves tenant classes round-robin into a Mix, seeding each
// tenant independently.
func ComposeMix(seed uint64, classes ...TenantClass) TenantMix {
	return workload.Compose(seed, classes...)
}

// LLMPrefill builds a prefill-phase LLM workload: systolic-array-bound
// attention/MLP blocks with light HBM traffic, scaled by batch x prompt
// tokens.
func LLMPrefill(name string, batch, promptTokens int, seed uint64, cfg npu.CoreConfig) *trace.Workload {
	return workload.Prefill(name, batch, promptTokens, seed, cfg)
}

// LLMDecode builds a decode-phase LLM workload: vector-unit- and
// HBM-bandwidth-bound single-token steps over a batch's KV cache.
func LLMDecode(name string, batch, contextTokens int, seed uint64, cfg npu.CoreConfig) *trace.Workload {
	return workload.Decode(name, batch, contextTokens, seed, cfg)
}

// PrefillDecodeMix composes the flagship LLM serving scenario: half the
// tenants prefill-heavy (compute-bound, daytime-peaked diurnal traffic),
// half decode-heavy (memory-bound, anti-phased at 4x the rate), with
// heavy-tailed batch sizes and context lengths. Feed the result to ServeFleet
// via a TrafficEngine.
func PrefillDecodeMix(tenants int, rateHz float64, cfg npu.CoreConfig, seed uint64) TenantMix {
	return workload.PrefillDecodeMix(tenants, rateHz, cfg, seed)
}
