// Package v10 is a from-scratch Go reproduction of "V10: Hardware-Assisted
// NPU Multi-tenancy for Improved Resource Utilization and Fairness"
// (Xue, Liu, Nai, Huang — ISCA 2023).
//
// It bundles a discrete-event NPU simulator (TPU-like core: 128×128 systolic
// array + 8×128×2 vector unit + 32 MB vector memory + 330 GB/s HBM), the V10
// tensor-operator scheduler with priority-based scheduling (Algorithm 1) and
// lightweight operator preemption (§3.3), the PREMA-style preemptive
// multitasking baseline (PMT), a calibrated zoo of the 11 MLPerf/TPU
// reference models the paper evaluates, and the clustering-based workload
// collocation mechanism (§3.4).
//
// Quick start:
//
//	cfg := v10.DefaultConfig()
//	bert, _ := v10.NewWorkload("BERT", 32, 1, cfg)
//	ncf, _ := v10.NewWorkload("NCF", 32, 2, cfg)
//	res, _ := v10.Collocate([]*v10.Workload{bert, ncf}, v10.SchemeV10Full, v10.Options{Config: cfg})
//	fmt.Printf("aggregate utilization: %.0f%%\n", 100*res.AggregateUtil())
//
// See the examples/ directory for runnable programs and cmd/v10bench for the
// harness that regenerates every table and figure of the paper.
package v10

import (
	"errors"
	"fmt"

	"v10/internal/baseline"
	"v10/internal/metrics"
	"v10/internal/models"
	"v10/internal/npu"
	"v10/internal/obs"
	"v10/internal/sched"
	"v10/internal/trace"
)

// Config describes one NPU core (paper Table 5 defaults).
type Config = npu.CoreConfig

// DefaultConfig returns the paper's simulator configuration: 128×128 SA,
// 8×128×2 VU, 700 MHz, 32 MB vector memory, 32 GB HBM at 330 GB/s, and a
// 32768-cycle scheduler time slice.
func DefaultConfig() Config { return npu.DefaultConfig() }

// Workload is a deployed inference service emitting request operator graphs.
type Workload = trace.Workload

// Graph is one request's tensor-operator DAG.
type Graph = trace.Graph

// Op is a single tensor operator (SA or VU).
type Op = trace.Op

// Result holds the measured outcome of a simulation run.
type Result = metrics.RunResult

// WorkloadResult holds one workload's measurements within a Result.
type WorkloadResult = metrics.WorkloadStats

// Observability layer (see internal/obs): a Tracer receives the simulation's
// typed timeline events; a CounterLog receives interval-sampled per-workload
// counter snapshots. Both are nil by default and cost nothing when disabled.

// Tracer receives simulation timeline events.
type Tracer = obs.Tracer

// TraceEvent is one timeline record.
type TraceEvent = obs.Event

// ChromeTrace renders the event stream as Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing.
type ChromeTrace = obs.ChromeWriter

// TraceRing is a bounded in-memory event sink holding the timeline's tail.
type TraceRing = obs.Ring

// CounterLog collects per-workload counter snapshots for CSV/JSON export.
type CounterLog = obs.CounterLog

// TraceEventType classifies timeline events (TraceEvent.Type).
type TraceEventType = obs.EventType

// Timeline event types, re-exported for filtering TraceRing contents.
const (
	EvDispatch      = obs.EvDispatch
	EvStall         = obs.EvStall
	EvRunSegment    = obs.EvRunSegment
	EvPreempt       = obs.EvPreempt
	EvCtxSave       = obs.EvCtxSave
	EvCtxRestore    = obs.EvCtxRestore
	EvDispatchDelay = obs.EvDispatchDelay
	EvRequestDone   = obs.EvRequestDone
	EvHBMRebalance  = obs.EvHBMRebalance
	EvDMA           = obs.EvDMA
)

// NewChromeTrace creates a Perfetto-loadable trace writer whose timestamps
// are converted from cycles at the config's clock rate.
func NewChromeTrace(cfg Config) *ChromeTrace {
	if cfg.SADim == 0 {
		cfg = DefaultConfig()
	}
	return obs.NewChromeWriter(cfg.CyclesPerMicrosecond())
}

// NewTraceRing creates an in-memory event sink holding up to capacity events.
func NewTraceRing(capacity int) *TraceRing { return obs.NewRing(capacity) }

// NewCounterLog creates an empty counter-snapshot log.
func NewCounterLog() *CounterLog { return obs.NewCounterLog() }

// MultiTracer fans events out to every non-nil sink.
func MultiTracer(sinks ...Tracer) Tracer { return obs.Multi(sinks...) }

// ErrMaxCycles is returned (wrapped, alongside the partial Result) when a
// V10 simulation exceeds its cycle cap before every workload finishes.
var ErrMaxCycles = sched.ErrMaxCycles

// ModelNames returns the 11 evaluated model families (paper Table 4).
func ModelNames() []string { return models.Names() }

// NewWorkload builds a calibrated workload for one of the Table 4 models
// (full name or paper abbreviation) at the given batch size. seed controls
// the deterministic per-request trace jitter. It fails for unknown models,
// invalid batches, or batches that exceed HBM capacity (OOM), mirroring the
// paper's out-of-memory failures.
func NewWorkload(model string, batch int, seed uint64, cfg Config) (*Workload, error) {
	spec, ok := models.ByName(model)
	if !ok {
		return nil, fmt.Errorf("v10: unknown model %q (see ModelNames)", model)
	}
	if batch < 1 {
		return nil, fmt.Errorf("v10: invalid batch size %d", batch)
	}
	if spec.OOM(batch, cfg.HBMBytes) {
		return nil, fmt.Errorf("v10: %s at batch %d needs %d bytes, exceeding the %d-byte HBM",
			model, batch, spec.MemoryFootprint(batch), cfg.HBMBytes)
	}
	return spec.Workload(batch, seed, cfg), nil
}

// CustomWorkload wraps a user-provided request-graph generator as a
// workload, for driving the simulator with your own traces.
func CustomWorkload(name string, gen func(request int) *Graph) *Workload {
	return trace.NewWorkload(name, name, 1, gen)
}

// Scheme selects the multi-tenancy design to simulate.
type Scheme int

const (
	// SchemePMT is the preemptive multitasking baseline (PREMA-style
	// whole-core time sharing, 20–40 µs context switches).
	SchemePMT Scheme = iota
	// SchemeV10Base enables simultaneous SA/VU operator execution with
	// round-robin scheduling, no preemption.
	SchemeV10Base
	// SchemeV10Fair adds the priority-based scheduling policy (Algorithm 1).
	SchemeV10Fair
	// SchemeV10Full adds lightweight operator preemption (§3.3) — the
	// complete V10 design.
	SchemeV10Full
)

// String names the scheme the way the paper does.
func (s Scheme) String() string {
	switch s {
	case SchemePMT:
		return "PMT"
	case SchemeV10Base:
		return "V10-Base"
	case SchemeV10Fair:
		return "V10-Fair"
	case SchemeV10Full:
		return "V10-Full"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Options configure a simulation run. The zero value uses the paper's
// defaults with 20 requests per workload.
type Options struct {
	Config   Config // zero value → DefaultConfig
	Requests int    // requests each workload must complete (default 20)

	// TimeSlice overrides the scheduler time slice in cycles (V10 schemes).
	TimeSlice int64

	// PMTQuantum overrides the PMT whole-core quantum in cycles.
	PMTQuantum int64

	// PreemptMargin tunes how under-served a waiting workload must be before
	// V10-Full preempts (default 1.25).
	PreemptMargin float64

	// ArrivalRateHz switches V10 schemes from closed-loop serving to
	// open-loop Poisson arrivals at this per-workload rate; request latency
	// then includes queueing delay. Zero keeps the paper's closed loop.
	// The PMT baseline only supports the closed loop.
	ArrivalRateHz float64

	// SoftwareScheduler charges the §4 host-software scheduling cost
	// (~20 µs per operator dispatch) instead of V10's hidden hardware
	// scheduler latency. V10 schemes only.
	SoftwareScheduler bool

	// PremaBaseline switches the PMT scheme from plain round-robin time
	// sharing to PREMA's token-based policy with shortest-job-first
	// tiebreaks (Choi & Rhu, HPCA'20) — the baseline the paper compares
	// against.
	PremaBaseline bool

	// Seed controls PMT context-switch jitter.
	Seed uint64

	// MaxCycles caps the simulated cycles before a run is abandoned with
	// ErrMaxCycles (default 200e9). Capped runs still return their partial
	// Result alongside the error.
	MaxCycles int64

	// Tracer, when non-nil, receives the run's timeline events from both the
	// V10 schemes and the PMT baseline.
	Tracer Tracer

	// Counters, when non-nil, receives per-workload counter snapshots every
	// CounterInterval cycles plus a final one (V10 schemes only).
	Counters *CounterLog

	// CounterInterval is the counter sampling period in cycles
	// (default 32 × the scheduler time slice).
	CounterInterval int64
}

func (o Options) config() Config {
	cfg := o.Config
	if cfg.SADim == 0 {
		cfg = DefaultConfig()
	}
	if o.TimeSlice > 0 {
		cfg.TimeSlice = o.TimeSlice
	}
	return cfg
}

// Profile runs a workload alone on a dedicated core and reports its
// characterization (the Figs. 3–8 methodology).
func Profile(w *Workload, opt Options) (*Result, error) {
	requests := opt.Requests
	if requests <= 0 {
		requests = 20
	}
	return baseline.RunSingle(w, opt.config(), requests)
}

// Collocate simulates the workloads sharing one NPU core under the chosen
// scheme and returns the measured result.
func Collocate(workloads []*Workload, scheme Scheme, opt Options) (*Result, error) {
	cfg := opt.config()
	switch scheme {
	case SchemePMT:
		if opt.ArrivalRateHz > 0 {
			return nil, fmt.Errorf("v10: the PMT baseline only supports closed-loop serving")
		}
		if opt.SoftwareScheduler {
			return nil, fmt.Errorf("v10: SoftwareScheduler applies to V10 schemes only")
		}
		policy := baseline.PMTRoundRobin
		if opt.PremaBaseline {
			policy = baseline.PMTPrema
		}
		return baseline.RunPMT(workloads, baseline.PMTOptions{
			Config:              cfg,
			Policy:              policy,
			Quantum:             opt.PMTQuantum,
			RequestsPerWorkload: opt.Requests,
			MaxCycles:           opt.MaxCycles,
			Seed:                opt.Seed,
			WeightByPriority:    true,
			Tracer:              opt.Tracer,
		})
	case SchemeV10Base, SchemeV10Fair, SchemeV10Full:
		so := sched.Options{
			Config:              cfg,
			RequestsPerWorkload: opt.Requests,
			MaxCycles:           opt.MaxCycles,
			PreemptMargin:       opt.PreemptMargin,
			ArrivalRateHz:       opt.ArrivalRateHz,
			SoftwareScheduler:   opt.SoftwareScheduler,
			Seed:                opt.Seed,
			Tracer:              opt.Tracer,
			Counters:            opt.Counters,
			CounterInterval:     opt.CounterInterval,
		}
		switch scheme {
		case SchemeV10Base:
			so.Policy = sched.RoundRobin
		case SchemeV10Fair:
			so.Policy = sched.Priority
		case SchemeV10Full:
			so.Policy = sched.Priority
			so.Preemption = true
		}
		return sched.Run(workloads, so)
	default:
		return nil, fmt.Errorf("v10: unknown scheme %v", scheme)
	}
}

// sectioner is implemented by sinks that group a multi-run sweep (the
// ChromeTrace writer and the CounterLog both do).
type sectioner interface{ BeginSection(label string) }

// CompareSchemes runs all four designs on the same workload set and returns
// results keyed by scheme name, plus the single-tenant progress rates needed
// to compute STP (Result.STP). When opt.Tracer or opt.Counters support
// sections (ChromeTrace, CounterLog), each scheme's events land in its own
// section so one file holds the whole sweep. A failing scheme does not stop
// the sweep: the remaining schemes still run, every partial result (including
// a cycle-capped run's measurements up to the cap) lands in the map, and the
// per-scheme errors come back joined, so errors.Is(err, ErrMaxCycles) still
// identifies timeouts.
func CompareSchemes(workloads []*Workload, opt Options) (map[string]*Result, []float64, error) {
	requests := opt.Requests
	if requests <= 0 {
		requests = 20
	}
	rates, err := baseline.SingleTenantRates(workloads, opt.config(), requests)
	if err != nil {
		return nil, nil, err
	}
	out := make(map[string]*Result, 4)
	var errs []error
	for _, s := range []Scheme{SchemePMT, SchemeV10Base, SchemeV10Fair, SchemeV10Full} {
		if sec, ok := opt.Tracer.(sectioner); ok && opt.Tracer != nil {
			sec.BeginSection(s.String())
		}
		if opt.Counters != nil {
			opt.Counters.BeginSection(s.String())
		}
		res, err := Collocate(workloads, s, opt)
		if res != nil {
			out[s.String()] = res
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("v10: %s: %w", s, err))
		}
	}
	return out, rates, errors.Join(errs...)
}
