package v10

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestModelNames(t *testing.T) {
	names := ModelNames()
	if len(names) != 11 {
		t.Fatalf("model count = %d, want 11", len(names))
	}
}

func TestNewWorkloadValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := NewWorkload("BERT", 32, 1, cfg); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	if _, err := NewWorkload("RNRS", 32, 1, cfg); err != nil {
		t.Fatalf("abbreviation rejected: %v", err)
	}
	if _, err := NewWorkload("NoSuchNet", 32, 1, cfg); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := NewWorkload("BERT", 0, 1, cfg); err == nil {
		t.Fatal("zero batch accepted")
	}
	_, err := NewWorkload("Mask-RCNN", 64, 1, cfg)
	if err == nil || !strings.Contains(err.Error(), "HBM") {
		t.Fatalf("OOM batch should fail with a memory error, got %v", err)
	}
}

func TestSchemeString(t *testing.T) {
	cases := map[Scheme]string{
		SchemePMT: "PMT", SchemeV10Base: "V10-Base",
		SchemeV10Fair: "V10-Fair", SchemeV10Full: "V10-Full",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if Scheme(99).String() != "Scheme(99)" {
		t.Error("unknown scheme string wrong")
	}
}

func TestProfileAndCollocateEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	bert, err := NewWorkload("BERT", 32, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ncf, err := NewWorkload("NCF", 32, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}

	single, err := Profile(bert, Options{Requests: 3})
	if err != nil {
		t.Fatal(err)
	}
	if single.Scheme != "Single" || single.Workloads[0].Requests != 3 {
		t.Fatalf("profile result wrong: %+v", single)
	}

	full, err := Collocate([]*Workload{bert, ncf}, SchemeV10Full, Options{Requests: 3})
	if err != nil {
		t.Fatal(err)
	}
	pmt, err := Collocate([]*Workload{bert, ncf}, SchemePMT, Options{Requests: 3})
	if err != nil {
		t.Fatal(err)
	}
	if full.AggregateUtil() <= pmt.AggregateUtil() {
		t.Fatalf("V10-Full util %v <= PMT %v", full.AggregateUtil(), pmt.AggregateUtil())
	}
}

func TestCollocateUnknownScheme(t *testing.T) {
	cfg := DefaultConfig()
	w, _ := NewWorkload("MNIST", 32, 1, cfg)
	if _, err := Collocate([]*Workload{w}, Scheme(42), Options{}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestCompareSchemes(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := NewWorkload("DLRM", 32, 1, cfg)
	b, _ := NewWorkload("ResNet", 32, 2, cfg)
	results, rates, err := CompareSchemes([]*Workload{a, b}, Options{Requests: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 || len(rates) != 2 {
		t.Fatalf("results/rates = %d/%d", len(results), len(rates))
	}
	stpPMT := results["PMT"].STP(rates)
	stpFull := results["V10-Full"].STP(rates)
	if stpFull <= stpPMT {
		t.Fatalf("V10-Full STP %v <= PMT %v", stpFull, stpPMT)
	}
}

func TestCustomWorkload(t *testing.T) {
	w := CustomWorkload("mine", func(request int) *Graph {
		return &Graph{Ops: []Op{{ID: 0, Compute: 1000}}}
	})
	res, err := Profile(w, Options{Requests: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workloads[0].Requests != 2 {
		t.Fatal("custom workload did not run")
	}
}

func TestOptionsOverrides(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := NewWorkload("MNIST", 32, 1, cfg)
	b, _ := NewWorkload("NCF", 32, 2, cfg)
	// A non-default time slice must still work.
	res, err := Collocate([]*Workload{a, b}, SchemeV10Full, Options{Requests: 2, TimeSlice: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles == 0 {
		t.Fatal("no cycles simulated")
	}
}

func TestAdvisorEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	var training []*Workload
	for i, name := range []string{"BERT", "DLRM", "NCF", "ResNet", "Transformer", "MNIST", "EfficientNet", "RetinaNet"} {
		w, err := NewWorkload(name, 32, uint64(i+1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		training = append(training, w)
	}
	adv, err := TrainAdvisor(training, AdvisorOptions{Clusters: 4, ProfileRequests: 2, PairSamples: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Clusters() < 2 {
		t.Fatalf("clusters = %d", adv.Clusters())
	}
	bert := training[0]
	dlrm := training[1]
	tfmr := training[4]
	if adv.PredictGain(bert, dlrm) <= 0 {
		t.Fatal("gain should be positive")
	}
	// Complementary pair should look at least as good as the conflicting one.
	if adv.PredictGain(bert, dlrm) < adv.PredictGain(bert, tfmr)-0.2 {
		t.Fatalf("complementary gain %v much worse than conflicting %v",
			adv.PredictGain(bert, dlrm), adv.PredictGain(bert, tfmr))
	}
	// Cluster assignment must be deterministic.
	if adv.Cluster(bert) != adv.Cluster(bert) {
		t.Fatal("cluster assignment nondeterministic")
	}
}

func TestAdvisorPlanPairs(t *testing.T) {
	cfg := DefaultConfig()
	var ws []*Workload
	for i, name := range []string{"BERT", "DLRM", "NCF", "ResNet", "Transformer", "MNIST"} {
		w, err := NewWorkload(name, 32, uint64(i+1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	adv, err := TrainAdvisor(ws, AdvisorOptions{Clusters: 3, ProfileRequests: 2, PairSamples: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pairs, alone := adv.PlanPairs(ws)
	used := map[int]bool{}
	for _, p := range pairs {
		if used[p[0]] || used[p[1]] {
			t.Fatalf("workload reused across pairs: %v", pairs)
		}
		used[p[0]], used[p[1]] = true, true
	}
	for _, i := range alone {
		if used[i] {
			t.Fatalf("alone workload %d also paired", i)
		}
		used[i] = true
	}
	if len(used) != len(ws) {
		t.Fatalf("plan covered %d/%d workloads", len(used), len(ws))
	}
}

func TestSimulateClusterFacade(t *testing.T) {
	cfg := DefaultConfig()
	var ws []*Workload
	for i, name := range []string{"BERT", "NCF", "DLRM", "ResNet"} {
		w, err := NewWorkload(name, 32, uint64(i+1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	res, err := SimulateCluster(ws, NaivePlacement(len(ws)), ClusterOptions{Requests: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoresUsed != 2 || res.TotalSTP <= 1 {
		t.Fatalf("cluster result wrong: %+v", res)
	}
	pmt, err := SimulateCluster(ws, NaivePlacement(len(ws)), ClusterOptions{Requests: 3, UsePMT: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSTP <= pmt.TotalSTP {
		t.Fatalf("cluster V10 STP %v <= PMT %v", res.TotalSTP, pmt.TotalSTP)
	}
}

func TestTraceRoundTripFacade(t *testing.T) {
	cfg := DefaultConfig()
	w, err := NewWorkload("MNIST", 32, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := RecordTrace(w, 3)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := back.Workload()
	if err != nil {
		t.Fatal(err)
	}
	// Replayed traces must run through the simulator like any workload.
	res, err := Profile(replay, Options{Requests: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workloads[0].Requests != 3 {
		t.Fatal("replayed workload did not serve requests")
	}
}

func TestAdvisorPlanPlacement(t *testing.T) {
	cfg := DefaultConfig()
	var ws []*Workload
	for i, name := range []string{"BERT", "DLRM", "NCF", "Transformer"} {
		w, err := NewWorkload(name, 32, uint64(i+1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	adv, err := TrainAdvisor(ws, AdvisorOptions{Clusters: 3, ProfileRequests: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := adv.PlanPlacement(ws)
	if err := p.Validate(len(ws)); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
}

func TestOpenLoopFacade(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := NewWorkload("MNIST", 32, 1, cfg)
	b, _ := NewWorkload("DLRM", 32, 2, cfg)
	res, err := Collocate([]*Workload{a, b}, SchemeV10Full,
		Options{Requests: 3, ArrivalRateHz: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workloads[0].Requests < 3 {
		t.Fatal("open-loop run did not complete requests")
	}
	if _, err := Collocate([]*Workload{a, b}, SchemePMT,
		Options{Requests: 3, ArrivalRateHz: 100}); err == nil {
		t.Fatal("PMT should reject open-loop serving")
	}
	if _, err := Collocate([]*Workload{a, b}, SchemePMT,
		Options{Requests: 3, SoftwareScheduler: true}); err == nil {
		t.Fatal("PMT should reject the software-scheduler option")
	}
}

func TestFairnessFacade(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := NewWorkload("BERT", 32, 1, cfg)
	b, _ := NewWorkload("NCF", 32, 2, cfg)
	results, rates, err := CompareSchemes([]*Workload{a, b}, Options{Requests: 3})
	if err != nil {
		t.Fatal(err)
	}
	fair := results["V10-Full"].Fairness(rates, []float64{1, 1})
	if fair < 0.5 || fair > 1.0001 {
		t.Fatalf("fairness index = %v, want in (0.5, 1]", fair)
	}
}

func TestPremaBaselineFacade(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := NewWorkload("MNIST", 32, 1, cfg)
	b, _ := NewWorkload("DLRM", 32, 2, cfg)
	res, err := Collocate([]*Workload{a, b}, SchemePMT,
		Options{Requests: 3, PremaBaseline: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Workloads {
		if w.Requests < 3 {
			t.Fatal("PREMA baseline did not complete requests")
		}
	}
}

func TestAdvisorPlanGroups(t *testing.T) {
	cfg := DefaultConfig()
	var ws []*Workload
	for i, name := range []string{"BERT", "DLRM", "NCF", "Transformer", "MNIST", "ResNet"} {
		w, err := NewWorkload(name, 32, uint64(i+1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	adv, err := TrainAdvisor(ws, AdvisorOptions{Clusters: 3, ProfileRequests: 2, PairSamples: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	p := adv.PlanGroups(ws, 3)
	if err := p.Validate(len(ws)); err != nil {
		t.Fatal(err)
	}
	for _, g := range p {
		if len(g) > 3 {
			t.Fatalf("group %v exceeds cap", g)
		}
	}
	// Grouped placements must still simulate.
	res, err := SimulateCluster(ws, p, ClusterOptions{Requests: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSTP <= 0 {
		t.Fatal("grouped cluster made no progress")
	}
}

// A cycle-capped sweep must not lose information: every scheme's partial
// result (measurements up to the cap) stays in the map, the joined error
// matches ErrMaxCycles, and the lag diagnosis names the workload that was
// still incomplete when the cap hit.
func TestCompareSchemesPartialOnMaxCycles(t *testing.T) {
	cfg := DefaultConfig()
	a, err := NewWorkload("BERT", 32, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorkload("NCF", 32, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, rates, err := CompareSchemes([]*Workload{a, b}, Options{Requests: 3, MaxCycles: 50_000})
	if err == nil {
		t.Fatal("50k-cycle cap did not trip on a multi-million-cycle sweep")
	}
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	if len(rates) != 2 {
		t.Fatalf("single-tenant rates = %d entries, want 2", len(rates))
	}
	for _, scheme := range []string{"PMT", "V10-Base", "V10-Fair", "V10-Full"} {
		res, ok := out[scheme]
		if !ok {
			t.Fatalf("capped scheme %s missing from partial results (have %d)", scheme, len(out))
		}
		if res.TotalCycles < 50_000 {
			t.Fatalf("%s: partial result stops at %d cycles, cap was 50k", scheme, res.TotalCycles)
		}
		if len(res.Workloads) != 2 {
			t.Fatalf("%s: partial result has %d workloads", scheme, len(res.Workloads))
		}
	}
	// The diagnosis must name at least one lagging workload with its
	// progress so the timeout is actionable without re-running.
	msg := err.Error()
	if !strings.Contains(msg, a.Name) && !strings.Contains(msg, b.Name) {
		t.Fatalf("lag diagnosis does not name a workload: %s", msg)
	}
	if !strings.Contains(msg, "incomplete") {
		t.Fatalf("lag diagnosis missing progress detail: %s", msg)
	}
}
