package v10

import (
	"fmt"

	"v10/internal/ctlplane"
	"v10/internal/faults"
	"v10/internal/fleet"
	"v10/internal/vnpu"
)

// Fleet serving (see internal/fleet): a front-end dispatcher routes open-loop
// request streams from many tenants onto a fleet of simulated NPU cores, with
// placement driven by the trained collocation advisor (or the least-loaded /
// random baselines), bounded per-core queues with spill-or-shed backpressure,
// and per-tenant SLO accounting.

// FleetPolicy selects how the fleet dispatcher places tenants on cores.
type FleetPolicy = fleet.Policy

// VNPUTemplate declares one spatial vNPU slice as fractions of a core's
// systolic arrays and vector units (Compute), vector memory (VMem), and HBM
// bandwidth (HBM). See internal/vnpu.
type VNPUTemplate = vnpu.Template

// VNPUSliceStats is one slice's enforcement accounting after a run: vmem
// high-water mark against its ceiling, HBM bytes moved, token-bucket throttle
// stalls, and vmem cap hits.
type VNPUSliceStats = vnpu.SliceStats

// ParseVNPUTemplates parses and validates a slice-template spec string like
// "big=0.75:0.75:0.75;small=0.25" — slices separated by ';' or ',', each
// either "[name=]compute:vmem:hbm" or a single "[name=]fraction" applied to
// all three resources. Fractions must lie in (0,1] and may not sum past 1
// for any resource.
func ParseVNPUTemplates(spec string) ([]VNPUTemplate, error) {
	ts, err := vnpu.ParseTemplates(spec)
	if err != nil {
		return nil, err
	}
	if err := vnpu.Validate(ts); err != nil {
		return nil, err
	}
	return ts, nil
}

// Placement policies.
const (
	// PlaceAdvisor groups compatible tenants using a trained Advisor.
	PlaceAdvisor = fleet.PolicyAdvisor
	// PlaceLeastLoaded balances estimated load, ignoring compatibility.
	PlaceLeastLoaded = fleet.PolicyLeastLoaded
	// PlaceRandom scatters tenants uniformly (seeded).
	PlaceRandom = fleet.PolicyRandom
)

// ParseFleetPolicy maps a CLI spelling ("advisor", "least-loaded", "random")
// to a FleetPolicy.
func ParseFleetPolicy(s string) (FleetPolicy, error) { return fleet.ParsePolicy(s) }

// FaultSchedule is an injected set of core faults for a fleet run: fail-stop
// halts, transient straggler stalls, HBM-bandwidth degradation, and
// vector-memory pressure windows (see internal/faults).
type FaultSchedule = faults.Schedule

// ParseFaults parses a fault-schedule spec string like
// "fail@0:30e6;stall@1:10e6+2e6;hbm@2:5e6+1e6x0.5". Faults are separated by
// ';' or ',', each written kind@core:at with +dur and xfactor as the kind
// requires.
func ParseFaults(spec string) (*FaultSchedule, error) { return faults.Parse(spec) }

// GenerateFaults draws a random fault schedule for a fleet: each core
// fail-stops within the horizon with probability 1-e^(-horizon/mttf), with
// transient degradation windows sprinkled in proportion. Deterministic in the
// seed.
func GenerateFaults(cores int, horizonCycles, mttfCycles int64, seed uint64) *FaultSchedule {
	return faults.Generate(cores, horizonCycles, mttfCycles, seed)
}

// ElasticConfig parameterizes the fleet's elastic control plane: an
// SLO-attainment-driven autoscaling loop with hysteresis and cooldown that
// activates spare cores under pressure and drains them (migrating their
// queued work) when the fleet runs cold. See internal/ctlplane.
type ElasticConfig = ctlplane.Config

// ElasticDecision is one recorded control-plane action (scale-up,
// scale-down, or recluster) with the window and cycle it was taken at.
type ElasticDecision = ctlplane.Decision

// FleetControlOutcome is the elastic control plane's recorded outcome for a
// run: scaling counters, drain accounting, the full window-signal and
// decision traces, and per-core activity spans.
type FleetControlOutcome = fleet.ControlOutcome

// FleetAdmission selects the dispatcher's admission policy: AdmitQueueBound
// (the classic bounded queue) or AdmitPredictive (PREMA-style estimated-
// slowdown admission).
type FleetAdmission = fleet.Admission

// Admission policies.
const (
	// AdmitQueueBound admits while the target core's queue is under
	// QueueLimit — the static baseline.
	AdmitQueueBound = fleet.AdmitQueueBound
	// AdmitPredictive admits while the predicted slowdown
	// (wait + service) / service stays within SlowdownLimit.
	AdmitPredictive = fleet.AdmitPredictive
)

// ParseFleetAdmission maps a CLI spelling ("queue-bound", "predictive") to a
// FleetAdmission.
func ParseFleetAdmission(s string) (FleetAdmission, error) { return fleet.ParseAdmission(s) }

// FleetResult is a whole fleet run's outcome: per-core simulation results,
// per-tenant SLO statistics, and aggregate goodput/shed accounting.
type FleetResult = fleet.Result

// FleetTenantStats is one tenant's serving outcome across the fleet.
type FleetTenantStats = fleet.TenantStats

// FleetCoreResult is one core's simulation outcome within a fleet run.
type FleetCoreResult = fleet.CoreResult

// FleetOptions configure ServeFleet. The zero value serves two cores under
// least-loaded placement at the built-in default load.
type FleetOptions struct {
	Config Config // zero value → DefaultConfig

	// Cores is the number of independent NPU cores (default 2).
	Cores int

	// Policy picks tenant placement (default PlaceLeastLoaded).
	// PlaceAdvisor requires Advisor.
	Policy FleetPolicy

	// Advisor is the trained collocation advisor PlaceAdvisor places with
	// (and whose model gates spill compatibility). Other policies ignore it.
	Advisor *Advisor

	// RateHz is each tenant's open-loop Poisson arrival rate (default 60).
	RateHz float64

	// Arrivals, when non-nil, replaces the dispatcher's internal Poisson draw
	// with one explicit absolute arrival-cycle schedule per tenant (mutually
	// exclusive with RateHz). Build schedules with a TrafficEngine — trace
	// replay, diurnal, MMPP, or LLM prefill/decode mixes all reduce to this.
	Arrivals [][]int64

	// DurationCycles is the arrival window (default 50e6 cycles ≈ 71 ms at
	// 700 MHz); cores then drain their admitted queues.
	DurationCycles int64

	// QueueLimit bounds each core's dispatcher queue (default 8); arrivals
	// beyond it spill to another compatible core with room, or shed.
	QueueLimit int

	// NoSpill sheds over-bound arrivals immediately instead of probing
	// other cores.
	NoSpill bool

	// SLOFactor sets each tenant's latency SLO as a multiple of its
	// estimated single-tenant service time (default 10).
	SLOFactor float64

	// MaxCycles caps each core's simulated cycles (default 200e9). Capped
	// cores keep their partial measurements; ErrMaxCycles comes back joined.
	MaxCycles int64

	// Seed drives arrivals, random placement, and per-core scheduler seeds.
	Seed uint64

	// Parallel bounds the workers running per-core simulations (0 =
	// GOMAXPROCS). Results are bit-identical at any width.
	Parallel int

	// Faults is the injected fault schedule (nil or empty: none). Fail-stop
	// faults kill cores mid-run; the dispatcher detects the death by missed
	// heartbeats and migrates queued and checkpointed in-flight work to
	// surviving compatible cores. See ParseFaults and GenerateFaults.
	Faults *FaultSchedule

	// HeartbeatCycles is the dispatcher's core-liveness heartbeat period
	// (default 1e6 cycles ≈ 1.4 ms); MissedBeats consecutive misses declare
	// a core dead (default 3).
	HeartbeatCycles int64
	MissedBeats     int

	// MigrationRetries caps each victim request's migration attempts
	// (default 4); retries back off exponentially from
	// MigrationBackoffCycles (default 250e3). Exhausted victims are shed.
	MigrationRetries       int
	MigrationBackoffCycles int64

	// NoMigration sheds every victim of a core failure immediately instead
	// of migrating — the shed-only resilience baseline.
	NoMigration bool

	// Tracer, when non-nil, receives every core's timeline after the run —
	// a ChromeTrace sink gets one "core N" section per core, so the whole
	// fleet lands in one Perfetto file.
	Tracer Tracer

	// Counters, when non-nil, receives every core's counter snapshots under
	// "core N" sections (V10 schemes only).
	Counters *CounterLog

	// VNPUTemplates, when non-empty, carves every core into spatial vNPU
	// slices (hardware-assisted partitioning): each tenant is assigned a
	// (core, slice) pair and V10 temporal interleaving runs within each
	// slice. Slices enforce hard vector-memory ceilings and windowed
	// token-bucket HBM-bandwidth throttling. Requires a V10 scheme.
	VNPUTemplates []VNPUTemplate

	// SliceWindowCycles is the HBM token-bucket refill window for vNPU
	// slices (default vnpu.DefaultWindowCycles). Only meaningful with
	// VNPUTemplates.
	SliceWindowCycles int64

	// Elastic, when non-nil, turns on the autoscaling control plane: the
	// fleet starts at Elastic.MinCores active cores and the control loop
	// activates/drains spares against windowed SLO-attainment signals.
	// Requires a V10 scheme; mutually exclusive with Faults and
	// VNPUTemplates.
	Elastic *ElasticConfig

	// Admission picks the dispatcher's admission policy (default
	// AdmitQueueBound). AdmitPredictive admits on estimated slowdown
	// instead of queue depth.
	Admission FleetAdmission

	// SlowdownLimit is AdmitPredictive's ceiling on (wait + service) /
	// service (default SLOFactor; must be >= 1).
	SlowdownLimit float64

	// Recluster folds each window's observed tenant features into a private
	// clone of the advisor's K-Means stage (MacQueen online updates), so the
	// collocation model tracks tenant-mix drift. Requires Elastic and an
	// Advisor-backed run.
	Recluster bool

	// StatsWindowCycles sets the per-tenant windowed-stats bucket width
	// (default: the control interval under Elastic, otherwise no windows).
	StatsWindowCycles int64

	// FeedbackRounds closes the loop between estimated and realized latency:
	// after each round the dispatcher's per-tenant service estimates are
	// recalibrated against the realized averages and the run repeats with the
	// calibrated estimates (0 = single pass, no feedback).
	FeedbackRounds int

	// Tuned, when non-nil, applies a tuned policy's knob vector (see
	// LoadTunedPolicy and BuiltinTunedKnobs) over the options above: the
	// scheduler time slice, preemption margin, priority bias, QueueLimit, and
	// MigrationBackoffCycles are overridden outright, and the collocation
	// threshold / admission slowdown ceiling / elastic cooldown and drain
	// knobs apply when the corresponding subsystem is in play. The knobs are
	// validated against the tuner's legal ranges before the run.
	Tuned *TunedKnobs
}

// ServeFleet simulates the tenants' open-loop request streams on a fleet of
// NPU cores, each running the chosen scheme's scheduler. Placement, admission
// control (bounded queues with spill/shed backpressure), and per-tenant SLO
// accounting follow opt; see FleetOptions. Note the PMT baseline serves each
// core's admitted request count closed-loop, so its latencies exclude
// dispatcher queueing delay.
func ServeFleet(tenants []*Workload, scheme Scheme, opt FleetOptions) (*FleetResult, error) {
	switch scheme {
	case SchemePMT, SchemeV10Base, SchemeV10Fair, SchemeV10Full:
	default:
		return nil, fmt.Errorf("v10: unknown scheme %v", scheme)
	}
	if opt.Policy == PlaceAdvisor && opt.Advisor == nil {
		return nil, fmt.Errorf("v10: PlaceAdvisor requires a trained Advisor (see TrainAdvisor)")
	}
	fo := fleet.Options{
		Config:         opt.Config,
		Cores:          opt.Cores,
		Scheme:         scheme.String(),
		Policy:         opt.Policy,
		RateHz:         opt.RateHz,
		Arrivals:       opt.Arrivals,
		DurationCycles: opt.DurationCycles,
		QueueLimit:     opt.QueueLimit,
		NoSpill:        opt.NoSpill,
		SLOFactor:      opt.SLOFactor,
		MaxCycles:      opt.MaxCycles,
		Seed:           opt.Seed,
		Parallel:       opt.Parallel,
		Tracer:         opt.Tracer,
		Counters:       opt.Counters,

		VNPUTemplates:     opt.VNPUTemplates,
		SliceWindowCycles: opt.SliceWindowCycles,

		Elastic:           opt.Elastic,
		Admission:         opt.Admission,
		SlowdownLimit:     opt.SlowdownLimit,
		Recluster:         opt.Recluster,
		StatsWindowCycles: opt.StatsWindowCycles,
		FeedbackRounds:    opt.FeedbackRounds,

		Faults:                 opt.Faults,
		HeartbeatCycles:        opt.HeartbeatCycles,
		MissedBeats:            opt.MissedBeats,
		MigrationRetries:       opt.MigrationRetries,
		MigrationBackoffCycles: opt.MigrationBackoffCycles,
		NoMigration:            opt.NoMigration,
	}
	if opt.Advisor != nil {
		fo.Model = opt.Advisor.model
		fo.ProfileRequests = opt.Advisor.requests
	}
	// Tuned knobs go on last so the layer gating sees the final shape of the
	// run (model present? predictive admission? elastic?).
	if opt.Tuned != nil {
		if err := opt.Tuned.Validate(); err != nil {
			return nil, err
		}
		fo = opt.Tuned.Apply(fo)
	}
	return fleet.Run(tenants, fo)
}
