package main

import (
	"testing"

	"v10/internal/experiments"
)

func TestSelectGenerators(t *testing.T) {
	all, err := selectGenerators("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(experiments.Generators()) {
		t.Fatalf("empty -only selected %d of %d generators", len(all), len(experiments.Generators()))
	}

	gens, err := selectGenerators("fleet, fig18")
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0].ID != "fleet" || gens[1].ID != "fig18" {
		t.Fatalf("selected %v", gens)
	}

	if _, err := selectGenerators("fig18,nope"); err == nil {
		t.Error("unknown experiment ID accepted")
	}
	if _, err := selectGenerators(","); err == nil {
		t.Error("empty experiment ID accepted")
	}
}

func TestGeneratorIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, g := range experiments.Generators() {
		if seen[g.ID] {
			t.Errorf("duplicate experiment ID %q", g.ID)
		}
		seen[g.ID] = true
		if g.Run == nil {
			t.Errorf("experiment %q has no Run", g.ID)
		}
	}
	if !seen["fleet"] {
		t.Error("fleet experiment not registered")
	}
}
