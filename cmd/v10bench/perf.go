package main

import (
	"fmt"
	"os"
	"runtime/pprof"

	"v10/internal/bench"
)

// perfFlags holds the -perf mode's flag values (parsed in main).
type perfFlags struct {
	enabled    bool
	reps       int
	out        string // directory for BENCH_*.json when writing
	write      bool
	checkSim   string // committed BENCH_sim.json to gate against
	checkFleet string // committed BENCH_fleet.json to gate against
	baseSim    string // prior snapshot supplying baseline numbers
	baseFleet  string
	cpuProfile string // when set, profile the suites (feeds default.pgo)
}

// runPerf executes the committed benchmark suites, optionally gates against
// committed snapshots, and optionally rewrites them. Returns the process exit
// code.
func runPerf(f perfFlags) int {
	if f.cpuProfile != "" {
		pf, err := os.Create(f.cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	simSnap, err := bench.RunSim(f.reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fleetSnap, err := bench.RunFleet(f.reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	attach := func(snap *bench.Snapshot, path string) error {
		if path == "" {
			return nil
		}
		base, err := bench.Load(path)
		if err != nil {
			return err
		}
		snap.AttachBaseline(base)
		return nil
	}
	if err := attach(simSnap, f.baseSim); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := attach(fleetSnap, f.baseFleet); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	fmt.Println("== sim suite ==")
	fmt.Print(simSnap.Format())
	fmt.Println("== fleet suite ==")
	fmt.Print(fleetSnap.Format())

	failed := false
	gate := func(snap *bench.Snapshot, path string) {
		if path == "" {
			return
		}
		committed, err := bench.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
			return
		}
		// Gate against the committed file, and inherit its baselines so the
		// printed speedups track the original pre-overhaul trajectory.
		snap.AttachBaseline(committed)
		errs := bench.Check(snap, committed)
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "FAIL:", e)
			failed = true
		}
		if len(errs) == 0 {
			fmt.Printf("ok: %s within %.0f%% of %s\n", snap.Suite, bench.Tolerance*100, path)
		}
	}
	gate(simSnap, f.checkSim)
	gate(fleetSnap, f.checkFleet)

	if f.write {
		simPath := f.out + "/BENCH_sim.json"
		fleetPath := f.out + "/BENCH_fleet.json"
		if err := simSnap.Write(simPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := fleetSnap.Write(fleetPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("wrote %s and %s\n", simPath, fleetPath)
	}
	if failed {
		return 1
	}
	return 0
}
