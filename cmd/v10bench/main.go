// Command v10bench regenerates every table and figure of the paper from the
// simulator and writes them under a results directory as aligned text and
// CSV. Run with -list to see experiment IDs, or -only to regenerate a subset.
//
//	v10bench -out results               # everything (takes a minute or two)
//	v10bench -only fig18,fig21          # just those
//	v10bench -requests 8                # longer steady-state runs
//	v10bench -parallel 1                # force the serial path
//
// Experiments run on a bounded worker pool (GOMAXPROCS workers by default;
// -parallel overrides). Each discrete-event simulation stays on one
// goroutine and shared runs are deduplicated, so the emitted tables are
// bit-identical at any worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"v10/internal/experiments"
	"v10/internal/parallel"
	"v10/internal/report"
	"v10/internal/tune"
)

// selectGenerators resolves the -only flag: empty means every generator, else
// a comma-separated ID list in the order given.
func selectGenerators(only string) ([]experiments.Generator, error) {
	if only == "" {
		return experiments.Generators(), nil
	}
	var gens []experiments.Generator
	for _, id := range strings.Split(only, ",") {
		g, ok := experiments.ByID(strings.TrimSpace(id))
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		gens = append(gens, g)
	}
	return gens, nil
}

func main() {
	out := flag.String("out", "results", "directory to write tables into")
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	requests := flag.Int("requests", 4, "requests per workload per collocated run")
	profileReqs := flag.Int("profile-requests", 3, "requests per single-tenant characterization run")
	seed := flag.Uint64("seed", 1, "simulation seed")
	quiet := flag.Bool("quiet", false, "suppress table output on stdout")
	bars := flag.Bool("bars", false, "render tables as ASCII bar charts on stdout")
	markdown := flag.Bool("markdown", false, "additionally write <id>.md files")
	par := flag.Int("parallel", 0, "simulation worker count (0 = GOMAXPROCS, 1 = serial)")
	traceDir := flag.String("trace", "",
		"write a Perfetto-loadable <pair>.trace.json timeline per collocation pair into this directory")
	counterDir := flag.String("counters", "",
		"write <pair>.counters.csv per-workload counter snapshots into this directory")
	tunedFlag := flag.String("tuned", "",
		"tuned-policy JSON the 'tuned' experiment compares against the defaults (default: the committed v10tune winner)")
	var pf perfFlags
	flag.BoolVar(&pf.enabled, "perf", false,
		"run the committed performance suites (BENCH_sim/BENCH_fleet scenarios) instead of the paper tables")
	flag.IntVar(&pf.reps, "perf-reps", 2, "repetitions per perf scenario (best rep is kept)")
	flag.StringVar(&pf.out, "perf-out", ".", "directory BENCH_*.json snapshots are written into with -perf-write")
	flag.BoolVar(&pf.write, "perf-write", false, "rewrite BENCH_sim.json and BENCH_fleet.json from this run")
	flag.StringVar(&pf.checkSim, "check", "",
		"committed BENCH_sim.json to gate against (fail on >15% cycles/sec regression)")
	flag.StringVar(&pf.checkFleet, "check-fleet", "", "committed BENCH_fleet.json to gate against")
	flag.StringVar(&pf.baseSim, "perf-baseline", "",
		"prior BENCH_sim.json whose throughputs become the written snapshot's baselines")
	flag.StringVar(&pf.baseFleet, "perf-baseline-fleet", "",
		"prior BENCH_fleet.json whose throughputs become the written snapshot's baselines")
	flag.StringVar(&pf.cpuProfile, "perf-cpuprofile", "",
		"write a CPU profile of the perf suites to this file (source for cmd/v10bench/default.pgo)")
	flag.Parse()

	if pf.enabled {
		os.Exit(runPerf(pf))
	}

	if *list {
		for _, g := range experiments.Generators() {
			fmt.Printf("%-8s %s\n", g.ID, g.Name)
		}
		return
	}

	ctx := experiments.NewContext()
	ctx.Requests = *requests
	ctx.ProfileRequests = *profileReqs
	ctx.Seed = *seed
	ctx.Parallel = *par
	ctx.TraceDir = *traceDir
	ctx.CounterDir = *counterDir
	if *tunedFlag != "" {
		p, err := tune.LoadPolicy(*tunedFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ctx.TunedKnobs = &p.Knobs
	}

	gens, err := selectGenerators(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v; use -list\n", err)
		os.Exit(2)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Generators fan out across the worker pool too (the Context memo caches
	// dedupe the shared pair runs); tables come back in paper order.
	tables, err := parallel.Map(context.Background(), len(gens), *par,
		func(i int) (*report.Table, error) {
			tb, err := gens[i].Run(ctx)
			if err != nil {
				return nil, fmt.Errorf("experiment %s failed: %w", gens[i].ID, err)
			}
			return tb, nil
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for i, g := range gens {
		tb := tables[i]
		if !*quiet {
			if *bars {
				fmt.Println(tb.Bars(50))
			} else {
				fmt.Println(tb.String())
			}
		}
		txt := filepath.Join(*out, g.ID+".txt")
		if err := os.WriteFile(txt, []byte(tb.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		csv := filepath.Join(*out, g.ID+".csv")
		if err := os.WriteFile(csv, []byte(tb.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *markdown {
			md := filepath.Join(*out, g.ID+".md")
			if err := os.WriteFile(md, []byte(tb.Markdown()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	// Headline summary (abstract-level claims) when running everything.
	if *only == "" {
		s, err := ctx.HeadlineSummary()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		summary := fmt.Sprintf(
			"V10-Full vs PMT geomeans over the 11 evaluation pairs (paper values in parens):\n"+
				"  NPU utilization:  %.2fx (1.64x)\n"+
				"  throughput (STP): %.2fx (1.57x)\n"+
				"  average latency:  %.2fx (1.56x)\n"+
				"  95%% tail latency: %.2fx (1.74x)\n",
			s.UtilizationX, s.ThroughputX, s.AvgLatencyX, s.TailLatencyX)
		fmt.Print(summary)
		if err := os.WriteFile(filepath.Join(*out, "summary.txt"), []byte(summary), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
