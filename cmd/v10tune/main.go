// Command v10tune searches the serving stack's cross-layer knob space —
// scheduler quantum, preemption margin, priority bias, dispatcher queue
// bound, collocation threshold, migration backoff, and the elastic control
// plane's cooldown/drain parameters — with a seeded evolutionary search over
// the deterministic simulator, scored on a fixed corpus of fleet scenarios
// (steady serving, fault injection, LLM prefill/decode traffic,
// autoscaling). It prints the search result as JSON on stdout and can write
// the winning policy (loadable by v10serve -tuned) and the full Pareto
// front.
//
//	v10tune -seed 1 -generations 16 -pop 24 -out results/tuned_policy.json
//	v10tune -seed 1 -parallel 4                 # same front, any -parallel
//	v10tune -validate results/tuned_policy.json # load + range-check only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"v10/internal/tune"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main's testable body; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("v10tune", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 1, "search seed (same seed, same Pareto front at any -parallel)")
	par := fs.Int("parallel", 0, "candidate-evaluation workers (0 = GOMAXPROCS, 1 = serial)")
	generations := fs.Int("generations", 16, "breeding rounds after the initial population")
	pop := fs.Int("pop", 24, "candidates per generation (minimum 2)")
	out := fs.String("out", "", "write the winning policy JSON here (empty = don't)")
	frontOut := fs.String("front", "", "write the full Pareto front JSON here (empty = don't)")
	validate := fs.String("validate", "", "load and range-check this policy file, then exit")
	quiet := fs.Bool("quiet", false, "suppress per-generation progress on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *validate != "" {
		p, err := tune.LoadPolicy(*validate)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "%s: valid policy (%d knobs)\n", *validate, len(tune.KnobNames()))
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(p); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	if *pop < 2 {
		fmt.Fprintf(stderr, "invalid -pop %d (minimum 2)\n", *pop)
		return 2
	}
	if *generations < 1 {
		fmt.Fprintf(stderr, "invalid -generations %d (minimum 1)\n", *generations)
		return 2
	}

	fmt.Fprintf(stderr, "building evaluation corpus (seed %d)...\n", *seed)
	corpus, err := tune.DefaultCorpus(*seed, *par)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	progress := func(format string, args ...any) {
		fmt.Fprintf(stderr, format+"\n", args...)
	}
	if *quiet {
		progress = nil
	}
	res, err := tune.Search(tune.Options{
		Seed:        *seed,
		Parallel:    *par,
		Generations: *generations,
		Population:  *pop,
		Corpus:      corpus,
		Progress:    progress,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// The search-invariant oracles run in the production path: no policy is
	// written from a front that fails coverage, objective-consistency,
	// dominance, winner-constraint, or freshness checks.
	if err := tune.Verify(res, corpus, *par); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	if *out != "" {
		p := &tune.Policy{
			Description: "v10tune evolutionary search winner (gate: fleet+faults goodput up at p99 <= default)",
			Seed:        res.Seed,
			Generations: res.Generations,
			Population:  res.Population,
			Evaluations: res.Evaluations,
			Objectives:  &res.Best.Objectives,
			Knobs:       res.Best.Knobs,
		}
		if err := p.Save(*out); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote winning policy to %s\n", *out)
	}
	if *frontOut != "" {
		data, err := json.MarshalIndent(res.Front, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := os.WriteFile(*frontOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote %d-point Pareto front to %s\n", len(res.Front), *frontOut)
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}
