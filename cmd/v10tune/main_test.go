package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"v10/internal/tune"
)

// TestRunSmokeTinyBudget runs the whole production path — corpus build,
// search, the Verify oracle chain, and both output files — at the smallest
// legal budget, then checks the emitted schemas.
func TestRunSmokeTinyBudget(t *testing.T) {
	dir := t.TempDir()
	policyPath := filepath.Join(dir, "policy.json")
	frontPath := filepath.Join(dir, "front.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-seed", "1", "-pop", "2", "-generations", "1", "-parallel", "1",
		"-quiet", "-out", policyPath, "-front", frontPath}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}

	var res tune.Result
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatalf("stdout is not a Result: %v", err)
	}
	if res.Evaluations < 2 || len(res.Front) == 0 {
		t.Fatalf("degenerate result: %d evaluations, front %d", res.Evaluations, len(res.Front))
	}
	if len(res.Best.Scores) != 4 {
		t.Fatalf("Best scored %d corpus cells, want 4", len(res.Best.Scores))
	}

	p, err := tune.LoadPolicy(policyPath)
	if err != nil {
		t.Fatalf("written policy does not load: %v", err)
	}
	if p.Knobs != res.Best.Knobs {
		t.Fatalf("policy knobs %+v != Best knobs %+v", p.Knobs, res.Best.Knobs)
	}
	if p.Seed != 1 || p.Evaluations != res.Evaluations || p.Objectives == nil {
		t.Fatalf("policy provenance incomplete: %+v", p)
	}

	frontData, err := os.ReadFile(frontPath)
	if err != nil {
		t.Fatal(err)
	}
	var front []tune.Point
	if err := json.Unmarshal(frontData, &front); err != nil {
		t.Fatalf("front file is not a []Point: %v", err)
	}
	if len(front) != len(res.Front) {
		t.Fatalf("front file has %d points, result %d", len(front), len(res.Front))
	}
}

func TestRunValidateAcceptsCommittedPolicy(t *testing.T) {
	var stdout, stderr bytes.Buffer
	path := filepath.Join("..", "..", tune.TunedPolicyPath)
	if code := run([]string{"-validate", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	var p tune.Policy
	if err := json.Unmarshal(stdout.Bytes(), &p); err != nil {
		t.Fatalf("-validate stdout is not a Policy: %v", err)
	}
	if p.Knobs != tune.Tuned() {
		t.Fatalf("committed policy knobs %+v != Tuned() literal", p.Knobs)
	}
}

func TestRunErrorExits(t *testing.T) {
	dir := t.TempDir()
	writeRaw := func(name, body string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	outOfRange := `{"knobs": {"quantum_cycles": 32768, "preempt_margin": 99,
		"priority_exponent": 0, "queue_limit": 8, "collocation_threshold": 1.3,
		"migration_backoff_cycles": 250000, "cooldown_intervals": 2,
		"slowdown_limit": 2.5, "drain_occupancy": 0.25}}`
	nonFinite := `{"knobs": {"quantum_cycles": 32768, "preempt_margin": 1e999,
		"priority_exponent": 0, "queue_limit": 8, "collocation_threshold": 1.3,
		"migration_backoff_cycles": 250000, "cooldown_intervals": 2,
		"slowdown_limit": 2.5, "drain_occupancy": 0.25}}`
	for name, tc := range map[string]struct {
		args []string
		want int
	}{
		"unknown flag":          {[]string{"-definitely-not-a-flag"}, 2},
		"population below two":  {[]string{"-pop", "1"}, 2},
		"zero generations":      {[]string{"-generations", "0"}, 2},
		"validate missing file": {[]string{"-validate", filepath.Join(dir, "no-such.json")}, 1},
		"validate garbage":      {[]string{"-validate", writeRaw("garbage.json", "not json")}, 1},
		"validate unknown field": {[]string{
			"-validate", writeRaw("unknown.json", `{"knobs": {}, "bogus": 1}`)}, 1},
		"validate out-of-range knob": {[]string{
			"-validate", writeRaw("range.json", outOfRange)}, 1},
		"validate non-finite knob": {[]string{
			"-validate", writeRaw("inf.json", nonFinite)}, 1},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code != tc.want {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", name, code, tc.want, stderr.String())
		}
	}
}
