// Command v10cluster trains the clustering-based collocation advisor (§3.4)
// on the model zoo and reports cluster assignments, pairwise predictions,
// and a greedy collocation plan.
//
//	v10cluster                      # cluster the zoo, print assignments
//	v10cluster -plan BERT:32,NCF:32,DLRM:32,ResNet:32
//	v10cluster -parallel 1          # force serial pairwise profiling
//
// Training cost is dominated by the O(n²) pairwise collocation simulations;
// they fan out across -parallel workers (GOMAXPROCS by default) with
// bit-identical results to a serial run.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	v10 "v10"
	"v10/internal/models"
)

func main() {
	k := flag.Int("k", 5, "number of clusters")
	batches := flag.String("batches", "8,32,64", "batch sizes for the training population")
	requests := flag.Int("requests", 2, "requests per profiling simulation")
	plan := flag.String("plan", "", "comma-separated model:batch list to plan collocations for")
	seed := flag.Uint64("seed", 1, "training seed")
	par := flag.Int("parallel", 0, "profiling worker count (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	cfg := v10.DefaultConfig()
	var training []*v10.Workload
	for i, spec := range models.Specs() {
		for _, bs := range strings.Split(*batches, ",") {
			b, err := strconv.Atoi(strings.TrimSpace(bs))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad batch %q\n", bs)
				os.Exit(2)
			}
			w, err := v10.NewWorkload(spec.Name, b, *seed+uint64(i*100+b), cfg)
			if err != nil {
				continue // OOM at this batch
			}
			training = append(training, w)
		}
	}
	fmt.Printf("training on %d workload instances (profiling pairs, may take a minute)...\n", len(training))
	adv, err := v10.TrainAdvisor(training, v10.AdvisorOptions{
		Clusters: *k, ProfileRequests: *requests, PairSamples: 8, Seed: *seed,
		Parallel: *par,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	byCluster := map[int][]string{}
	for _, w := range training {
		c := adv.Cluster(w)
		byCluster[c] = append(byCluster[c], w.Name)
	}
	var ids []int
	for c := range byCluster {
		ids = append(ids, c)
	}
	sort.Ints(ids)
	fmt.Printf("\ncluster database (%d clusters):\n", adv.Clusters())
	for _, c := range ids {
		sort.Strings(byCluster[c])
		fmt.Printf("  cluster %d: %s\n", c, strings.Join(byCluster[c], ", "))
	}

	if *plan == "" {
		return
	}
	var ws []*v10.Workload
	for i, item := range strings.Split(*plan, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) != 2 {
			fmt.Fprintf(os.Stderr, "bad plan item %q: want model:batch\n", item)
			os.Exit(2)
		}
		b, err := strconv.Atoi(parts[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad batch in %q\n", item)
			os.Exit(2)
		}
		w, err := v10.NewWorkload(parts[0], b, uint64(1000+i), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ws = append(ws, w)
	}
	pairs, alone := adv.PlanPairs(ws)
	fmt.Println("\ncollocation plan:")
	for _, p := range pairs {
		fmt.Printf("  core: %s + %s (predicted gain %.2fx over PMT)\n",
			ws[p[0]].Name, ws[p[1]].Name, adv.PredictGain(ws[p[0]], ws[p[1]]))
	}
	for _, i := range alone {
		fmt.Printf("  core: %s (dedicated — no compatible partner)\n", ws[i].Name)
	}
}
