// Command v10profile characterizes a single workload on a dedicated NPU core
// (the paper's §2 methodology): FLOPS/MXU/VPU/HBM utilization, operator
// statistics, roofline placement, and the ideal DAG speedup, across batch
// sizes.
//
//	v10profile -model BERT
//	v10profile -model DLRM -batches 1,32,512
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	v10 "v10"
	"v10/internal/models"
)

func main() {
	model := flag.String("model", "BERT", "model name or abbreviation (see -listmodels)")
	batches := flag.String("batches", "1,8,32,64,128,256,512,1024,2048", "batch sizes to sweep")
	requests := flag.Int("requests", 4, "requests per run")
	listModels := flag.Bool("listmodels", false, "list models and exit")
	flag.Parse()

	if *listModels {
		for _, s := range models.Specs() {
			fmt.Printf("%-13s %-6s %s\n", s.Name, s.Abbrev, s.Description)
		}
		return
	}

	cfg := v10.DefaultConfig()
	spec, ok := models.ByName(*model)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown model %q (use -listmodels)\n", *model)
		os.Exit(2)
	}
	peakPerCycle := cfg.PeakFLOPS() / cfg.FrequencyHz

	fmt.Printf("%s (%s) — single-tenant characterization\n", spec.Name, spec.Description)
	fmt.Printf("%6s %9s %9s %9s %9s %12s %10s %10s\n",
		"batch", "FLOPS%", "MXU%", "VPU%", "HBM%", "latency(ms)", "OI(F/B)", "speedup")
	for _, bs := range strings.Split(*batches, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(bs))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad batch %q\n", bs)
			os.Exit(2)
		}
		w, err := v10.NewWorkload(*model, b, 1, cfg)
		if err != nil {
			fmt.Printf("%6d %s\n", b, "OOM (paper: workloads with large batch sizes fail)")
			continue
		}
		res, err := v10.Profile(w, v10.Options{Requests: *requests})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var flops, bytes float64
		for _, ws := range res.Workloads {
			flops += ws.FLOPs
			bytes += ws.HBMBytes
		}
		oi := 0.0
		if bytes > 0 {
			oi = flops / bytes
		}
		speedup := 0.0
		for r := 0; r < *requests; r++ {
			speedup += w.Request(r).IdealSpeedup()
		}
		speedup /= float64(*requests)
		fmt.Printf("%6d %8.1f%% %8.1f%% %8.1f%% %8.1f%% %12.2f %10.1f %10.3f\n",
			b,
			100*res.FLOPSUtil(peakPerCycle),
			100*res.SAUtil(), 100*res.VUUtil(), 100*res.HBMUtil(),
			res.Workloads[0].AvgLatency()/700e3, oi, speedup)
	}
}
