package main

import (
	"testing"

	v10 "v10"
)

func TestParseWorkloads(t *testing.T) {
	cfg := v10.DefaultConfig()
	ws, err := parseWorkloads("BERT:32,DLRM:32:0.25", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || ws[0].Name != "BERT-b32" {
		t.Fatalf("parsed %v", ws)
	}
	if ws[1].Priority != 0.25 {
		t.Fatalf("priority = %v", ws[1].Priority)
	}
	for _, bad := range []string{
		"BERT",           // missing batch
		"BERT:x",         // bad batch
		"BERT:32:x",      // bad priority
		"NoSuchModel:32", // unknown model
		"BERT:32:1:1",    // too many fields
		"Mask-RCNN:999",  // OOM
	} {
		if _, err := parseWorkloads(bad, cfg); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}

func TestSchemeByName(t *testing.T) {
	cases := map[string]v10.Scheme{
		"pmt": v10.SchemePMT, "PMT": v10.SchemePMT,
		"V10-Full": v10.SchemeV10Full, "full": v10.SchemeV10Full,
		"base": v10.SchemeV10Base, "fair": v10.SchemeV10Fair,
	}
	for in, want := range cases {
		got, ok := schemeByName(in)
		if !ok || got != want {
			t.Errorf("schemeByName(%q) = %v,%v", in, got, ok)
		}
	}
	if _, ok := schemeByName("bogus"); ok {
		t.Error("bogus scheme accepted")
	}
}
