// Command v10sim simulates a multi-tenant NPU scenario and prints the
// measured utilization, throughput, and latency for each scheme.
//
//	v10sim -workloads BERT:32,NCF:32                 # compare all schemes
//	v10sim -workloads BERT:32:0.8,DLRM:32:0.2        # with priorities
//	v10sim -workloads BERT:32,NCF:32 -scheme V10-Full -slice 4096
//	v10sim -workloads BERT:32 -record bert.trace.json # capture a trace
//	v10sim -traces bert.trace.json,ncf.trace.json     # replay traces
//	v10sim -scheme V10-Full -trace timeline.json      # Perfetto timeline
//	v10sim -counters counters.csv                     # counter snapshots
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	v10 "v10"
)

func main() {
	spec := flag.String("workloads", "BERT:32,NCF:32",
		"comma-separated workloads as model:batch[:priority]")
	scheme := flag.String("scheme", "",
		"one of PMT, V10-Base, V10-Fair, V10-Full (default: compare all)")
	requests := flag.Int("requests", 8, "requests per workload")
	slice := flag.Int64("slice", 0, "scheduler time slice override in cycles")
	seed := flag.Uint64("seed", 1, "simulation seed")
	record := flag.String("record", "", "record the first workload's trace to this file and exit")
	traces := flag.String("traces", "", "comma-separated trace files to replay instead of -workloads")
	traceOut := flag.String("trace", "",
		"write a Chrome/Perfetto trace-event JSON timeline of the V10 runs to this file")
	countersOut := flag.String("counters", "",
		"write per-workload counter snapshots to this file (.json for JSON, else CSV)")
	counterInterval := flag.Int64("counter-interval", 0,
		"counter sampling interval in cycles (default 32x the time slice)")
	flag.Parse()

	cfg := v10.DefaultConfig()
	var workloads []*v10.Workload
	var err error
	if *traces != "" {
		workloads, err = loadTraces(*traces)
	} else {
		workloads, err = parseWorkloads(*spec, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *record != "" {
		f := v10.RecordTrace(workloads[0], *requests)
		out, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer out.Close()
		if err := v10.WriteTrace(out, f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d requests of %s to %s\n", *requests, workloads[0].Name, *record)
		return
	}
	opt := v10.Options{Config: cfg, Requests: *requests, TimeSlice: *slice, Seed: *seed,
		CounterInterval: *counterInterval}
	var tracer *v10.ChromeTrace
	if *traceOut != "" {
		tracer = v10.NewChromeTrace(cfg)
		opt.Tracer = tracer
	}
	if *countersOut != "" {
		opt.Counters = v10.NewCounterLog()
	}
	// flush writes the observability outputs; runs that time out still leave
	// a timeline behind, which is exactly when it is most needed.
	flush := func() {
		if tracer != nil {
			if err := tracer.WriteFile(*traceOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d trace events to %s (open in ui.perfetto.dev)\n",
				tracer.Len(), *traceOut)
		}
		if opt.Counters != nil {
			if err := opt.Counters.WriteFile(*countersOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d counter rows to %s\n", opt.Counters.Len(), *countersOut)
		}
	}

	if *scheme != "" {
		s, ok := schemeByName(*scheme)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
			os.Exit(2)
		}
		if tracer != nil {
			tracer.BeginSection(s.String())
		}
		if opt.Counters != nil {
			opt.Counters.BeginSection(s.String())
		}
		res, err := v10.Collocate(workloads, s, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			if res == nil {
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "reporting partial measurements up to the cycle cap:")
		}
		printResult(res, nil)
		flush()
		if err != nil {
			os.Exit(1)
		}
		return
	}

	results, rates, err := v10.CompareSchemes(workloads, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if len(results) == 0 {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "reporting partial measurements up to the cycle cap:")
	}
	for _, name := range []string{"PMT", "V10-Base", "V10-Fair", "V10-Full"} {
		if res, ok := results[name]; ok {
			printResult(res, rates)
			fmt.Println()
		}
	}
	flush()
	if err != nil {
		os.Exit(1)
	}
}

func loadTraces(paths string) ([]*v10.Workload, error) {
	var out []*v10.Workload
	for _, p := range strings.Split(paths, ",") {
		f, err := os.Open(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		tf, err := v10.ReadTrace(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		w, err := tf.Workload()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, w)
	}
	return out, nil
}

func parseWorkloads(spec string, cfg v10.Config) ([]*v10.Workload, error) {
	var out []*v10.Workload
	for i, item := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("bad workload %q: want model:batch[:priority]", item)
		}
		batch, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad batch in %q: %v", item, err)
		}
		w, err := v10.NewWorkload(parts[0], batch, uint64(i+1), cfg)
		if err != nil {
			return nil, err
		}
		if len(parts) == 3 {
			prio, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("bad priority in %q: %v", item, err)
			}
			if !(prio > 0) || math.IsInf(prio, 0) {
				return nil, fmt.Errorf("bad priority in %q: must be positive and finite", item)
			}
			w = w.WithPriority(prio)
		}
		out = append(out, w)
	}
	return out, nil
}

func schemeByName(name string) (v10.Scheme, bool) {
	switch strings.ToLower(name) {
	case "pmt":
		return v10.SchemePMT, true
	case "v10-base", "base":
		return v10.SchemeV10Base, true
	case "v10-fair", "fair":
		return v10.SchemeV10Fair, true
	case "v10-full", "full":
		return v10.SchemeV10Full, true
	}
	return 0, false
}

func printResult(res *v10.Result, rates []float64) {
	fmt.Printf("=== %s ===\n", res.Scheme)
	fmt.Printf("simulated %d cycles (%.2f ms of device time)\n",
		res.TotalCycles, float64(res.TotalCycles)/700e3)
	both, saOnly, vuOnly := res.OverlapBreakdown()
	fmt.Printf("utilization: SA %.1f%%  VU %.1f%%  aggregate %.1f%%  HBM %.1f%%\n",
		100*res.SAUtil(), 100*res.VUUtil(), 100*res.AggregateUtil(), 100*res.HBMUtil())
	fmt.Printf("overlap: both %.1f%%  SA-only %.1f%%  VU-only %.1f%%\n",
		100*both, 100*saOnly, 100*vuOnly)
	if rates != nil {
		fmt.Printf("system throughput (STP): %.3f\n", res.STP(rates))
	}
	for i, w := range res.Workloads {
		fmt.Printf("  %-14s requests=%d  avg=%.2f ms  p95=%.2f ms  preempts=%d  switch=%.0f µs\n",
			w.Name, w.Requests,
			w.AvgLatency()/700e3, w.TailLatency(95)/700e3,
			w.Preemptions, float64(w.SwitchCycles)/700)
		_ = i
	}
}
