// Command v10sim simulates a multi-tenant NPU scenario and prints the
// measured utilization, throughput, and latency for each scheme.
//
//	v10sim -workloads BERT:32,NCF:32                 # compare all schemes
//	v10sim -workloads BERT:32:0.8,DLRM:32:0.2        # with priorities
//	v10sim -workloads BERT:32,NCF:32 -scheme V10-Full -slice 4096
//	v10sim -workloads BERT:32 -record bert.trace.json # capture a trace
//	v10sim -traces bert.trace.json,ncf.trace.json     # replay traces
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	v10 "v10"
)

func main() {
	spec := flag.String("workloads", "BERT:32,NCF:32",
		"comma-separated workloads as model:batch[:priority]")
	scheme := flag.String("scheme", "",
		"one of PMT, V10-Base, V10-Fair, V10-Full (default: compare all)")
	requests := flag.Int("requests", 8, "requests per workload")
	slice := flag.Int64("slice", 0, "scheduler time slice override in cycles")
	seed := flag.Uint64("seed", 1, "simulation seed")
	record := flag.String("record", "", "record the first workload's trace to this file and exit")
	traces := flag.String("traces", "", "comma-separated trace files to replay instead of -workloads")
	flag.Parse()

	cfg := v10.DefaultConfig()
	var workloads []*v10.Workload
	var err error
	if *traces != "" {
		workloads, err = loadTraces(*traces)
	} else {
		workloads, err = parseWorkloads(*spec, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *record != "" {
		f := v10.RecordTrace(workloads[0], *requests)
		out, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer out.Close()
		if err := v10.WriteTrace(out, f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d requests of %s to %s\n", *requests, workloads[0].Name, *record)
		return
	}
	opt := v10.Options{Config: cfg, Requests: *requests, TimeSlice: *slice, Seed: *seed}

	if *scheme != "" {
		s, ok := schemeByName(*scheme)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
			os.Exit(2)
		}
		res, err := v10.Collocate(workloads, s, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		printResult(res, nil)
		return
	}

	results, rates, err := v10.CompareSchemes(workloads, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, name := range []string{"PMT", "V10-Base", "V10-Fair", "V10-Full"} {
		printResult(results[name], rates)
		fmt.Println()
	}
}

func loadTraces(paths string) ([]*v10.Workload, error) {
	var out []*v10.Workload
	for _, p := range strings.Split(paths, ",") {
		f, err := os.Open(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		tf, err := v10.ReadTrace(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		w, err := tf.Workload()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, w)
	}
	return out, nil
}

func parseWorkloads(spec string, cfg v10.Config) ([]*v10.Workload, error) {
	var out []*v10.Workload
	for i, item := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("bad workload %q: want model:batch[:priority]", item)
		}
		batch, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad batch in %q: %v", item, err)
		}
		w, err := v10.NewWorkload(parts[0], batch, uint64(i+1), cfg)
		if err != nil {
			return nil, err
		}
		if len(parts) == 3 {
			prio, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("bad priority in %q: %v", item, err)
			}
			w = w.WithPriority(prio)
		}
		out = append(out, w)
	}
	return out, nil
}

func schemeByName(name string) (v10.Scheme, bool) {
	switch strings.ToLower(name) {
	case "pmt":
		return v10.SchemePMT, true
	case "v10-base", "base":
		return v10.SchemeV10Base, true
	case "v10-fair", "fair":
		return v10.SchemeV10Fair, true
	case "v10-full", "full":
		return v10.SchemeV10Full, true
	}
	return 0, false
}

func printResult(res *v10.Result, rates []float64) {
	fmt.Printf("=== %s ===\n", res.Scheme)
	fmt.Printf("simulated %d cycles (%.2f ms of device time)\n",
		res.TotalCycles, float64(res.TotalCycles)/700e3)
	both, saOnly, vuOnly := res.OverlapBreakdown()
	fmt.Printf("utilization: SA %.1f%%  VU %.1f%%  aggregate %.1f%%  HBM %.1f%%\n",
		100*res.SAUtil(), 100*res.VUUtil(), 100*res.AggregateUtil(), 100*res.HBMUtil())
	fmt.Printf("overlap: both %.1f%%  SA-only %.1f%%  VU-only %.1f%%\n",
		100*both, 100*saOnly, 100*vuOnly)
	if rates != nil {
		fmt.Printf("system throughput (STP): %.3f\n", res.STP(rates))
	}
	for i, w := range res.Workloads {
		fmt.Printf("  %-14s requests=%d  avg=%.2f ms  p95=%.2f ms  preempts=%d  switch=%.0f µs\n",
			w.Name, w.Requests,
			w.AvgLatency()/700e3, w.TailLatency(95)/700e3,
			w.Preemptions, float64(w.SwitchCycles)/700)
		_ = i
	}
}
