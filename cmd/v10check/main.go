// Command v10check is the differential simulation-testing gate: it runs N
// seed-addressed random trials through every scheduling scheme with the
// runtime invariant checker attached, cross-checks the differential oracles
// (serial equivalence, permutation fairness, determinism), and on the first
// violation writes a minimized JSON repro plus an optional Chrome trace of
// the failing run, then exits 1.
//
//	v10check                                  # 500 trials from seed 0
//	v10check -trials 2000 -seed 100           # wider sweep, custom base seed
//	v10check -out repro.json -trace fail.json # artifacts on first violation
//	v10check -replay repro.json               # re-run a saved repro
//	v10check -chaos 200                       # fleet chaos trials under fault injection
//	v10check -workload 200                    # workload-engine arrival-schedule trials
//	v10check -isolation 200                   # vNPU noisy-neighbor isolation trials
//	v10check -elastic 200                     # autoscaling control-plane trials
//	v10check -v                               # per-trial progress
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"v10/internal/obs"
	"v10/internal/parallel"
	"v10/internal/simcheck"
)

func main() {
	trials := flag.Int("trials", 500, "number of random trials")
	seed := flag.Uint64("seed", 0, "base seed (trial i uses seed+i)")
	out := flag.String("out", "repro.json", "minimized repro file written on violation")
	tracePath := flag.String("trace", "", "Chrome trace of the first failing run (open in Perfetto)")
	replay := flag.String("replay", "", "re-check a saved repro instead of random trials")
	chaos := flag.Int("chaos", 0, "run this many fleet chaos trials (fault injection) instead of scheme trials")
	workloadTrials := flag.Int("workload", 0, "run this many workload-engine trials (explicit arrival schedules) instead of scheme trials")
	isolation := flag.Int("isolation", 0, "run this many vNPU noisy-neighbor isolation trials instead of scheme trials")
	elastic := flag.Int("elastic", 0, "run this many autoscaling control-plane trials instead of scheme trials")
	minimizeBudget := flag.Int("minimize", 200, "max re-checks spent minimizing a failure (0 disables)")
	par := flag.Int("parallel", 0, "trial worker count (0 = GOMAXPROCS, 1 = serial)")
	verbose := flag.Bool("v", false, "log every trial")
	flag.Parse()

	if *chaos > 0 {
		runChaos(*chaos, *seed, *out, *par, *verbose)
		return
	}

	if *isolation > 0 {
		runIsolation(*isolation, *seed, *out, *par, *verbose)
		return
	}

	if *elastic > 0 {
		runElastic(*elastic, *seed, *out, *par, *verbose)
		return
	}

	if *workloadTrials > 0 {
		if v := sweep(*workloadTrials, *seed, *par, *verbose, "workload trial", simcheck.RunWorkloadTrial); v != nil {
			fmt.Fprintf(os.Stderr, "workload seed %d violated %d invariant(s)\n", v.Scenario.Seed, len(v.Problems))
			report(v.Scenario, v, *out, *tracePath, *minimizeBudget)
			os.Exit(1)
		}
		fmt.Printf("v10check: %d workload trials from seed %d, zero violations\n", *workloadTrials, *seed)
		return
	}

	if *replay != "" {
		sc, err := simcheck.ReadScenario(*replay)
		if err != nil {
			fatal(err)
		}
		if v := simcheck.CheckScenario(sc); v != nil {
			report(sc, v, *out, *tracePath, 0) // replays are already minimal
			os.Exit(1)
		}
		fmt.Printf("repro %s: all schemes clean\n", *replay)
		return
	}

	if v := sweep(*trials, *seed, *par, *verbose, "trial", simcheck.RunTrial); v != nil {
		fmt.Fprintf(os.Stderr, "seed %d violated %d invariant(s)\n", v.Scenario.Seed, len(v.Problems))
		report(v.Scenario, v, *out, *tracePath, *minimizeBudget)
		os.Exit(1)
	}
	fmt.Printf("v10check: %d trials from seed %d, zero violations\n", *trials, *seed)
}

// sweep runs trial seeds seed..seed+trials-1 through run on a worker pool,
// batch by batch, and returns the violation with the smallest seed (nil when
// clean). Batching keeps the first-failure semantics deterministic — every
// worker finishes its batch before violations are scanned in seed order — so
// a parallel sweep reports the same repro as a serial one.
func sweep[V any](trials int, seed uint64, par int, verbose bool, kind string,
	run func(uint64) *V) *V {
	batch := 8 * parallel.Workers(par)
	for lo := 0; lo < trials; lo += batch {
		hi := lo + batch
		if hi > trials {
			hi = trials
		}
		vs, _ := parallel.Map(context.Background(), hi-lo, par, func(i int) (*V, error) {
			s := seed + uint64(lo+i)
			if verbose {
				fmt.Printf("%s %d/%d seed %d\n", kind, lo+i+1, trials, s)
			}
			return run(s), nil
		})
		for _, v := range vs {
			if v != nil {
				return v
			}
		}
	}
	return nil
}

// runChaos is the fleet-level resilience gate: every seeded random chaos
// trial — core failures, stragglers, degradation windows against a random
// fleet — must conserve requests, replay bit-identically, and keep its typed
// fault events consistent with its recovery metrics. The first violation
// writes the full scenario as a JSON repro and exits 1.
func runChaos(trials int, seed uint64, out string, par int, verbose bool) {
	v := sweep(trials, seed, par, verbose, "chaos trial", simcheck.RunChaosTrial)
	if v != nil {
		fmt.Fprintf(os.Stderr, "chaos seed %d violated %d invariant(s)\n", v.Scenario.Seed, len(v.Problems))
		for _, p := range v.Problems {
			fmt.Fprintf(os.Stderr, "  - %s\n", p)
		}
		if out != "" {
			j, err := json.MarshalIndent(v, "", "  ")
			if err == nil {
				err = os.WriteFile(out, append(j, '\n'), 0o644)
			}
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "chaos repro written to %s\n", out)
		}
		os.Exit(1)
	}
	fmt.Printf("v10check: %d chaos trials from seed %d, zero violations\n", trials, seed)
}

// runIsolation is the vNPU spatial-partitioning gate: every seeded
// noisy-neighbor trial — an HBM flood, vector-memory hog, or MMPP flash
// crowd in the slice next to a well-behaved victim — must keep the victim's
// p99 contained, conserve every slice's windowed HBM quota and vmem ceiling,
// and replay bit-identically. The first violation writes the full scenario
// as a JSON repro and exits 1.
func runIsolation(trials int, seed uint64, out string, par int, verbose bool) {
	v := sweep(trials, seed, par, verbose, "isolation trial", simcheck.RunIsolationTrial)
	if v == nil {
		fmt.Printf("v10check: %d isolation trials from seed %d, zero violations\n", trials, seed)
		return
	}
	fmt.Fprintf(os.Stderr, "isolation seed %d (%s aggressor) violated %d invariant(s)\n",
		v.Scenario.Seed, v.Scenario.Aggressor, len(v.Problems))
	for _, p := range v.Problems {
		fmt.Fprintf(os.Stderr, "  - %s\n", p)
	}
	if out != "" {
		j, err := json.MarshalIndent(v, "", "  ")
		if err == nil {
			err = os.WriteFile(out, append(j, '\n'), 0o644)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "isolation repro written to %s\n", out)
	}
	os.Exit(1)
}

// runElastic is the control-plane gate: every seeded autoscaling trial —
// diurnal swings, MMPP flash crowds, and churning tenants over a fleet that
// grows and shrinks — must conserve requests through core drains, take only
// decisions a clean controller replays (cooldown, hysteresis, LIFO drain),
// keep its typed scale events consistent with its metrics, report honest
// admission estimates, and rerun bit-identically. The first violation writes
// the full scenario as a JSON repro and exits 1.
func runElastic(trials int, seed uint64, out string, par int, verbose bool) {
	v := sweep(trials, seed, par, verbose, "elastic trial", simcheck.RunElasticTrial)
	if v == nil {
		fmt.Printf("v10check: %d elastic trials from seed %d, zero violations\n", trials, seed)
		return
	}
	fmt.Fprintf(os.Stderr, "elastic seed %d violated %d invariant(s)\n", v.Scenario.Seed, len(v.Problems))
	for _, p := range v.Problems {
		fmt.Fprintf(os.Stderr, "  - %s\n", p)
	}
	if out != "" {
		j, err := json.MarshalIndent(v, "", "  ")
		if err == nil {
			err = os.WriteFile(out, append(j, '\n'), 0o644)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "elastic repro written to %s\n", out)
	}
	os.Exit(1)
}

// report minimizes the failure, writes the repro and optional Chrome trace,
// and prints every problem.
func report(sc *simcheck.Scenario, v *simcheck.Violation, out, tracePath string, minimizeBudget int) {
	if minimizeBudget > 0 {
		if min, mv := simcheck.Minimize(sc, minimizeBudget); mv != nil {
			sc, v = min, mv
		}
	}
	for _, p := range v.Problems {
		fmt.Fprintf(os.Stderr, "  - %s\n", p)
	}
	if out != "" {
		if err := sc.WriteFile(out); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "repro written to %s (replay with -replay %s)\n", out, out)
	}
	if tracePath != "" {
		cw := obs.NewChromeWriter(sc.Config.CyclesPerMicrosecond())
		for _, scheme := range sc.Schemes {
			cw.BeginSection(scheme)
			run := simcheck.RunScheme(sc, scheme, false)
			for _, e := range run.Events {
				cw.Emit(e)
			}
		}
		if err := cw.WriteFile(tracePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "timeline written to %s\n", tracePath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "v10check:", err)
	os.Exit(1)
}
