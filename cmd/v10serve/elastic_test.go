package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// elasticArgs is the autoscaling fixture: three cores starting from one
// active, overloaded enough that the control loop must scale up.
func elasticArgs(extra ...string) []string {
	return append([]string{
		"-cores", "3", "-tenants", "4", "-models", "BERT,NCF", "-batch", "2",
		"-rate", "20000", "-duration-cycles", "3000000",
		"-policy", "least-loaded", "-seed", "3", "-autoscale", "1",
	}, extra...)
}

func TestRunElasticEmitsGoldenSummary(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(elasticArgs(), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	golden := filepath.Join("testdata", "summary.elastic.golden.json")
	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Fatalf("elastic summary drifted from golden (run with -update if intended):\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "elastic: ") {
		t.Error("elastic digest missing from stderr")
	}
}

func TestRunElasticSummarySchema(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(elasticArgs("-admission", "predictive", "-cooldown", "400000"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	var doc struct {
		Elastic map[string]any `json:"elastic"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Elastic == nil {
		t.Fatal("autoscaled run emitted no elastic block")
	}
	for _, key := range []string{
		"min_cores", "max_cores", "interval_cycles", "cooldown_cycles",
		"admission", "recluster", "final_active_cores", "peak_active_cores",
		"scale_ups", "scale_downs", "drain_victims", "readmitted", "drain_shed",
		"reclusters", "provisioned_core_cycles", "static_core_cycles", "decisions",
	} {
		if _, ok := doc.Elastic[key]; !ok {
			t.Errorf("elastic block is missing %q", key)
		}
	}
	if doc.Elastic["admission"] != "predictive" {
		t.Errorf("admission = %v", doc.Elastic["admission"])
	}
	if cd, _ := doc.Elastic["cooldown_cycles"].(float64); cd != 400000 {
		t.Errorf("cooldown_cycles = %v, want the -cooldown value", doc.Elastic["cooldown_cycles"])
	}
	if ups, _ := doc.Elastic["scale_ups"].(float64); ups == 0 {
		t.Error("overloaded autoscaling fixture never scaled up")
	}
	prov, _ := doc.Elastic["provisioned_core_cycles"].(float64)
	static, _ := doc.Elastic["static_core_cycles"].(float64)
	if !(prov > 0 && prov < static) {
		t.Errorf("provisioned %v vs static %v: elastic fleet should pay for less", prov, static)
	}
	if decs, _ := doc.Elastic["decisions"].([]any); len(decs) == 0 {
		t.Error("no decision trace in the elastic block")
	}
}

func TestRunStaticSummaryOmitsElasticBlock(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(quickArgs(), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	if strings.Contains(stdout.String(), `"elastic"`) {
		t.Fatal("static summary contains an elastic block")
	}
}

func TestRunElasticDeterministic(t *testing.T) {
	var a, b, stderr bytes.Buffer
	args := elasticArgs("-admission", "predictive")
	if code := run(args, &a, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	if code := run(args, &b, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different elastic summaries")
	}
}

func TestRunElasticRecluster(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := elasticArgs("-policy", "advisor", "-recluster", "-tenants", "6",
		"-models", "BERT,NCF,Transformer,DLRM,ResNet,MNIST")
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	var doc struct {
		Elastic struct {
			Recluster  bool    `json:"recluster"`
			ModelDrift float64 `json:"model_drift"`
		} `json:"elastic"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Elastic.Recluster {
		t.Fatal("recluster flag not reflected in the elastic block")
	}
	if doc.Elastic.ModelDrift <= 0 {
		t.Fatal("online re-clustering reported zero model drift")
	}
}

func TestRunRejectsBadElasticFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"pmt with autoscale":          elasticArgs("-scheme", "PMT"),
		"negative cooldown":           elasticArgs("-cooldown", "-1"),
		"negative control interval":   elasticArgs("-control-interval", "-5"),
		"autoscale above cores":       elasticArgs("-autoscale", "9"),
		"negative autoscale":          elasticArgs("-autoscale", "-1"),
		"autoscale with vnpu":         elasticArgs("-vnpu", "0.5;0.5"),
		"autoscale with faults":       elasticArgs("-faults", "fail@0:1500000"),
		"cooldown without autoscale":  quickArgs("-cooldown", "100000"),
		"interval without autoscale":  quickArgs("-control-interval", "100000"),
		"recluster without autoscale": quickArgs("-recluster", "-policy", "advisor"),
		"recluster without advisor":   elasticArgs("-recluster"),
		"unknown admission":           quickArgs("-admission", "psychic"),
		"slowdown below one":          elasticArgs("-admission", "predictive", "-slowdown", "0.5"),
		"slowdown without predictive": quickArgs("-slowdown", "4"),
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", name, code, stderr.String())
		}
	}
}
