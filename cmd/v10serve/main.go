// Command v10serve simulates a multi-NPU serving fleet: M tenants send
// open-loop Poisson request streams through a front-end dispatcher onto N
// simulated cores, with placement driven by the trained collocation advisor
// (or the least-loaded / random baselines) and bounded per-core queues that
// spill or shed the overflow. It prints a JSON summary to stdout and a human
// digest to stderr.
//
//	v10serve -cores 4 -tenants 8 -policy advisor
//	v10serve -cores 2 -tenants 6 -policy least-loaded -rate 250
//	v10serve -cores 4 -tenants 8 -scheme PMT -policy random
//	v10serve -cores 4 -tenants 8 -trace fleet.json -counters fleet.csv
//	v10serve -cores 4 -tenants 8 -workload mmpp -rate 120
//	v10serve -cores 4 -tenants 8 -trace-file prod.trace
//	v10serve -cores 4 -mix prefill-decode -tenants 8
//	v10serve -cores 2 -tenants 6 -vnpu "big=0.75:0.75:0.75;small=0.25"
//	v10serve -cores 4 -tenants 8 -tuned results/tuned_policy.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	v10 "v10"
)

// defaultMix cycles SA-heavy (BERT, Transformer, ResNet) and VU-heavy (NCF,
// DLRM, MNIST) models so every policy has both compatible and clashing pairs
// to work with.
var defaultMix = []string{"BERT", "NCF", "Transformer", "DLRM", "ResNet", "MNIST", "ShapeMask", "EfficientNet"}

// summary is the JSON document v10serve emits on stdout.
type summary struct {
	Scheme         string                 `json:"scheme"`
	Policy         string                 `json:"policy"`
	Cores          int                    `json:"cores"`
	TenantCount    int                    `json:"tenant_count"`
	RateHz         float64                `json:"rate_hz"`
	DurationCycles int64                  `json:"duration_cycles"`
	TotalCycles    int64                  `json:"total_cycles"`
	Offered        int                    `json:"offered"`
	Admitted       int                    `json:"admitted"`
	Shed           int                    `json:"shed"`
	Completed      int                    `json:"completed"`
	Good           int                    `json:"good"`
	GoodputHz      float64                `json:"goodput_hz"`
	ShedRate       float64                `json:"shed_rate"`
	Placement      [][]int                `json:"placement"`
	Workload       *workloadSummary       `json:"workload,omitempty"`
	VNPU           *vnpuSummary           `json:"vnpu,omitempty"`
	Faults         *faultSummary          `json:"faults,omitempty"`
	Elastic        *elasticSummary        `json:"elastic,omitempty"`
	CoreResults    []coreSummary          `json:"core_results"`
	Tenants        []v10.FleetTenantStats `json:"tenants"`
}

// workloadSummary is the traffic block of the stdout JSON, present only when
// the workload engine (not the legacy Poisson dispatcher draw) schedules
// arrivals.
type workloadSummary struct {
	Process           string `json:"process"`
	Mix               string `json:"mix"`
	TraceFile         string `json:"trace_file,omitempty"`
	ScheduledArrivals int    `json:"scheduled_arrivals"`
}

// faultSummary is the resilience block of the stdout JSON, present only when
// fault injection is on.
type faultSummary struct {
	Spec              string  `json:"spec"`
	Count             int     `json:"count"`
	FailedCores       []int   `json:"failed_cores"`
	HeartbeatCycles   int64   `json:"heartbeat_cycles"`
	Migrated          int     `json:"migrated"`
	MigrationShed     int     `json:"migration_shed"`
	MigrationCycles   int64   `json:"migration_cycles"`
	BaselineGoodputHz float64 `json:"baseline_goodput_hz"`
	GoodputRetained   float64 `json:"goodput_retained"`
}

// elasticSummary is the control-plane block of the stdout JSON, present only
// when -autoscale turns the elastic control plane on.
type elasticSummary struct {
	MinCores              int                   `json:"min_cores"`
	MaxCores              int                   `json:"max_cores"`
	IntervalCycles        int64                 `json:"interval_cycles"`
	CooldownCycles        int64                 `json:"cooldown_cycles"`
	Admission             string                `json:"admission"`
	Recluster             bool                  `json:"recluster"`
	FinalActiveCores      int                   `json:"final_active_cores"`
	PeakActiveCores       int                   `json:"peak_active_cores"`
	ScaleUps              int                   `json:"scale_ups"`
	ScaleDowns            int                   `json:"scale_downs"`
	DrainVictims          int                   `json:"drain_victims"`
	Readmitted            int                   `json:"readmitted"`
	DrainShed             int                   `json:"drain_shed"`
	Reclusters            int                   `json:"reclusters"`
	ModelDrift            float64               `json:"model_drift,omitempty"`
	ProvisionedCoreCycles int64                 `json:"provisioned_core_cycles"`
	StaticCoreCycles      int64                 `json:"static_core_cycles"`
	Decisions             []v10.ElasticDecision `json:"decisions"`
}

// vnpuSummary is the spatial-partitioning block of the stdout JSON, present
// only when -vnpu carves cores into slices. Slices folds each slice index's
// enforcement counters across all cores; per-core detail lives in the
// core_results rows.
type vnpuSummary struct {
	Spec         string               `json:"spec"`
	WindowCycles int64                `json:"window_cycles"`
	Slices       []vnpuSliceAggregate `json:"slices"`
}

// vnpuSliceAggregate is one slice index's accounting summed over cores.
type vnpuSliceAggregate struct {
	Slice          int     `json:"slice"`
	Name           string  `json:"name,omitempty"`
	Residents      int     `json:"residents"`
	HBMBytes       float64 `json:"hbm_bytes"`
	ThrottleStalls int64   `json:"throttle_stalls"`
	ThrottleCycles int64   `json:"throttle_cycles"`
	CapHits        int64   `json:"cap_hits"`
}

type coreSummary struct {
	Core          int                  `json:"core"`
	Tenants       []int                `json:"tenants"`
	Admitted      int                  `json:"admitted"`
	TotalCycles   int64                `json:"total_cycles"`
	AggregateUtil float64              `json:"aggregate_util"`
	SliceOf       []int                `json:"slice_of,omitempty"`
	Slices        []v10.VNPUSliceStats `json:"slices,omitempty"`
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main's testable body: parse flags, serve the fleet, emit the JSON
// summary on stdout. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("v10serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cores := fs.Int("cores", 4, "number of simulated NPU cores")
	tenants := fs.Int("tenants", 8, "number of tenants (cycles through -models)")
	modelsFlag := fs.String("models", strings.Join(defaultMix, ","),
		"comma-separated model mix tenants cycle through")
	batch := fs.Int("batch", 8, "inference batch size for every tenant")
	rate := fs.Float64("rate", 60, "per-tenant open-loop arrival rate in Hz")
	workloadFlag := fs.String("workload", "poisson",
		"arrival process: poisson (legacy dispatcher draw), uniform, diurnal, mmpp, or trace")
	traceFile := fs.String("trace-file", "",
		"inter-arrival-gap trace to replay, rate-normalized to -rate (implies -workload trace)")
	mixFlag := fs.String("mix", "models",
		`tenant mix: "models" (cycle -models) or "prefill-decode" (LLM prefill/decode classes with anti-phased diurnal traffic)`)
	policy := fs.String("policy", "advisor", "tenant placement: advisor, least-loaded, or random")
	schemeFlag := fs.String("scheme", "V10-Full", "per-core scheduler: PMT, V10-Base, V10-Fair, V10-Full")
	duration := fs.Int64("duration-cycles", 50_000_000, "arrival window in cycles")
	queueLimit := fs.Int("queue-limit", 8, "per-core dispatcher queue bound")
	noSpill := fs.Bool("no-spill", false, "shed over-bound arrivals instead of spilling to other cores")
	sloFactor := fs.Float64("slo-factor", 10, "latency SLO as a multiple of each tenant's estimated service time")
	faultSpec := fs.String("faults", "", `explicit fault schedule, e.g. "fail@0:30e6;stall@1:10e6+2e6"`)
	mttf := fs.Int64("mttf", 0, "generate random faults with this mean-time-to-failure in cycles (0 = off)")
	faultSeed := fs.Uint64("fault-seed", 0, "seed for -mttf fault generation (0 = use -seed)")
	heartbeat := fs.Int64("heartbeat", 0, "dispatcher liveness heartbeat period in cycles (0 = default 1e6)")
	noMigration := fs.Bool("no-migration", false, "shed failure victims instead of migrating (resilience baseline)")
	vnpuSpec := fs.String("vnpu", "",
		`carve each core into spatial vNPU slices, e.g. "big=0.75:0.75:0.75;small=0.25" ([name=]compute:vmem:hbm or [name=]fraction)`)
	vnpuWindow := fs.Int64("vnpu-window", 0, "HBM token-bucket refill window for vNPU slices in cycles (0 = default)")
	autoscale := fs.Int("autoscale", 0,
		"elastic control plane: start with this many active cores and autoscale up to -cores (0 = static fleet)")
	controlInterval := fs.Int64("control-interval", 0,
		"autoscaling control-tick period in cycles (0 = duration/16; requires -autoscale)")
	cooldown := fs.Int64("cooldown", 0,
		"minimum cycle gap between scale decisions (0 = 2 control intervals; requires -autoscale)")
	admission := fs.String("admission", "queue-bound",
		"dispatcher admission policy: queue-bound or predictive (PREMA-style estimated slowdown)")
	slowdown := fs.Float64("slowdown", 0,
		"predictive admission's slowdown ceiling (wait+service)/service (0 = -slo-factor)")
	recluster := fs.Bool("recluster", false,
		"fold observed tenant features into the advisor's clustering online (requires -autoscale and -policy advisor)")
	tunedFlag := fs.String("tuned", "",
		"tuned-policy JSON from v10tune -out; its knobs override the scheduler/queue/migration flags above")
	feedback := fs.Int("feedback-rounds", 0,
		"recalibrate service estimates against realized latency and re-run this many times (0 = single pass)")
	seed := fs.Uint64("seed", 1, "simulation seed (same seed, same result)")
	parallelism := fs.Int("parallel", 0, "worker goroutines for per-core simulations (0 = GOMAXPROCS)")
	traceOut := fs.String("trace", "", "write a Perfetto timeline of the whole fleet (one section per core) to this file")
	countersOut := fs.String("counters", "", "write per-core counter snapshots to this file (.json for JSON, else CSV)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	pol, err := v10.ParseFleetPolicy(*policy)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	scheme, ok := schemeByName(*schemeFlag)
	if !ok {
		fmt.Fprintf(stderr, "unknown scheme %q (want PMT, V10-Base, V10-Fair, or V10-Full)\n", *schemeFlag)
		return 2
	}
	var vnpuTemplates []v10.VNPUTemplate
	if *vnpuSpec != "" {
		vnpuTemplates, err = v10.ParseVNPUTemplates(*vnpuSpec)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if scheme == v10.SchemePMT {
			fmt.Fprintln(stderr, "-vnpu requires a V10 scheme (PMT has no slice-aware scheduler)")
			return 2
		}
	} else if *vnpuWindow != 0 {
		fmt.Fprintln(stderr, "-vnpu-window requires -vnpu")
		return 2
	}
	if *vnpuWindow < 0 {
		fmt.Fprintf(stderr, "invalid -vnpu-window %d\n", *vnpuWindow)
		return 2
	}
	adm, err := v10.ParseFleetAdmission(*admission)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *slowdown != 0 && adm != v10.AdmitPredictive {
		fmt.Fprintln(stderr, "-slowdown requires -admission predictive")
		return 2
	}
	if *slowdown < 0 || (*slowdown != 0 && *slowdown < 1) {
		fmt.Fprintf(stderr, "invalid -slowdown %v (must be >= 1)\n", *slowdown)
		return 2
	}
	if *autoscale < 0 || *autoscale > *cores {
		fmt.Fprintf(stderr, "invalid -autoscale %d (want 0..%d cores)\n", *autoscale, *cores)
		return 2
	}
	if *autoscale == 0 {
		switch {
		case *controlInterval != 0:
			fmt.Fprintln(stderr, "-control-interval requires -autoscale")
			return 2
		case *cooldown != 0:
			fmt.Fprintln(stderr, "-cooldown requires -autoscale")
			return 2
		case *recluster:
			fmt.Fprintln(stderr, "-recluster requires -autoscale")
			return 2
		}
	} else {
		if scheme == v10.SchemePMT {
			fmt.Fprintln(stderr, "-autoscale requires a V10 scheme (PMT has no drain/checkpoint support)")
			return 2
		}
		if *cooldown < 0 {
			fmt.Fprintf(stderr, "invalid -cooldown %d\n", *cooldown)
			return 2
		}
		if *controlInterval < 0 {
			fmt.Fprintf(stderr, "invalid -control-interval %d\n", *controlInterval)
			return 2
		}
		if vnpuTemplates != nil {
			fmt.Fprintln(stderr, "-autoscale and -vnpu are mutually exclusive")
			return 2
		}
	}
	if *recluster && pol != v10.PlaceAdvisor {
		fmt.Fprintln(stderr, "-recluster requires -policy advisor (there is no model to update)")
		return 2
	}
	if *feedback < 0 {
		fmt.Fprintf(stderr, "invalid -feedback-rounds %d\n", *feedback)
		return 2
	}
	var tuned *v10.TunedKnobs
	if *tunedFlag != "" {
		p, err := v10.LoadTunedPolicy(*tunedFlag)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		tuned = &p.Knobs
	}
	cfg := v10.DefaultConfig()
	proc := strings.ToLower(strings.TrimSpace(*workloadFlag))
	if *traceFile != "" && proc == "poisson" {
		proc = string(v10.TrafficReplay)
	}

	// The tenant mix fixes the workload set and, for prefill-decode, the
	// traffic specs; a nil specs slice means the legacy Poisson dispatcher
	// draw (no workload engine involved, bit-compatible with older runs).
	var ws []*v10.Workload
	var specs []v10.TrafficSpec
	switch *mixFlag {
	case "models":
		ws, err = buildTenants(*modelsFlag, *tenants, *batch, cfg)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		switch proc {
		case "poisson":
			// Legacy path: the fleet dispatcher draws its own Poisson stream.
		case string(v10.TrafficReplay):
			if *traceFile == "" {
				fmt.Fprintln(stderr, "-workload trace requires -trace-file")
				return 2
			}
			tr, err := v10.ReadTraceFile(*traceFile)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			specs = tr.Specs(len(ws), *rate)
		default:
			p, err := v10.ParseTrafficProcess(proc)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			specs = make([]v10.TrafficSpec, len(ws))
			for i := range specs {
				specs[i] = v10.TrafficSpec{Process: p, RateHz: *rate}
			}
		}
	case "prefill-decode":
		if proc != "poisson" || *traceFile != "" {
			fmt.Fprintln(stderr, "-mix prefill-decode brings its own anti-phased diurnal traffic; drop -workload / -trace-file")
			return 2
		}
		mix := v10.PrefillDecodeMix(*tenants, *rate, cfg, *seed)
		ws, specs = mix.Workloads, mix.Specs
		proc = "prefill-decode"
	default:
		fmt.Fprintf(stderr, "unknown mix %q (want models or prefill-decode)\n", *mixFlag)
		return 2
	}

	var arrivals [][]int64
	if specs != nil {
		eng := v10.TrafficEngine{Config: cfg, HorizonCycles: *duration, Seed: *seed}
		arrivals, err = eng.Schedules(specs)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	var schedule *v10.FaultSchedule
	switch {
	case *faultSpec != "" && *mttf != 0:
		fmt.Fprintln(stderr, "-faults and -mttf are mutually exclusive")
		return 2
	case *faultSpec != "":
		schedule, err = v10.ParseFaults(*faultSpec)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case *mttf != 0:
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed
		}
		schedule = v10.GenerateFaults(*cores, *duration, *mttf, fseed)
	}
	if err := schedule.Validate(*cores); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	opt := v10.FleetOptions{
		Config:         cfg,
		Cores:          *cores,
		Policy:         pol,
		RateHz:         *rate,
		DurationCycles: *duration,
		QueueLimit:     *queueLimit,
		NoSpill:        *noSpill,
		SLOFactor:      *sloFactor,
		Seed:           *seed,
		Parallel:       *parallelism,

		Faults:          schedule,
		HeartbeatCycles: *heartbeat,
		NoMigration:     *noMigration,

		VNPUTemplates:     vnpuTemplates,
		SliceWindowCycles: *vnpuWindow,

		Admission:     adm,
		SlowdownLimit: *slowdown,
		Recluster:     *recluster,

		FeedbackRounds: *feedback,
		Tuned:          tuned,
	}
	if *autoscale > 0 {
		opt.Elastic = &v10.ElasticConfig{
			MinCores:       *autoscale,
			IntervalCycles: *controlInterval,
			CooldownCycles: *cooldown,
		}
		if schedule != nil && !schedule.Empty() {
			fmt.Fprintln(stderr, "-autoscale and fault injection are mutually exclusive")
			return 2
		}
	}
	if arrivals != nil {
		opt.RateHz = 0 // mutually exclusive with explicit schedules
		opt.Arrivals = arrivals
	}
	if pol == v10.PlaceAdvisor {
		fmt.Fprintf(stderr, "training collocation advisor on %d tenants...\n", len(ws))
		adv, err := v10.TrainAdvisor(ws, v10.AdvisorOptions{
			Config: cfg, Clusters: 4, ProfileRequests: 3, PairSamples: 8,
			Seed: *seed, Parallel: *parallelism,
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		opt.Advisor = adv
	}
	var tracer *v10.ChromeTrace
	if *traceOut != "" {
		tracer = v10.NewChromeTrace(cfg)
		opt.Tracer = tracer
	}
	if *countersOut != "" {
		opt.Counters = v10.NewCounterLog()
	}

	res, runErr := v10.ServeFleet(ws, scheme, opt)
	if runErr != nil && res == nil {
		fmt.Fprintln(stderr, runErr)
		return 1
	}
	if runErr != nil {
		fmt.Fprintln(stderr, runErr)
		fmt.Fprintln(stderr, "reporting partial measurements up to the cycle cap:")
	}

	if arrivals != nil {
		total := 0
		for _, a := range arrivals {
			total += len(a)
		}
		fmt.Fprintf(stderr, "workload: %s (%s mix), %d arrivals scheduled over %d cycles\n",
			proc, *mixFlag, total, *duration)
	}
	printDigest(stderr, res)
	if tracer != nil {
		if err := tracer.WriteFile(*traceOut); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote %d trace events to %s (open in ui.perfetto.dev)\n",
			tracer.Len(), *traceOut)
	}
	if opt.Counters != nil {
		if err := opt.Counters.WriteFile(*countersOut); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote %d counter rows to %s\n", opt.Counters.Len(), *countersOut)
	}

	doc := buildSummary(res, len(ws), *rate)
	if vnpuTemplates != nil {
		doc.VNPU = buildVNPUSummary(res, *vnpuSpec, vnpuTemplates)
		for _, sa := range doc.VNPU.Slices {
			fmt.Fprintf(stderr, "vnpu slice %d%s: residents %d  hbm %.0f B  throttled %d (%d cycles)  cap hits %d\n",
				sa.Slice, sliceTag(sa.Name), sa.Residents, sa.HBMBytes,
				sa.ThrottleStalls, sa.ThrottleCycles, sa.CapHits)
		}
	}
	if arrivals != nil {
		wsum := &workloadSummary{Process: proc, Mix: *mixFlag, TraceFile: *traceFile}
		for _, a := range arrivals {
			wsum.ScheduledArrivals += len(a)
		}
		doc.Workload = wsum
	}
	if res.Control != nil {
		ctl := res.Control
		es := &elasticSummary{
			MinCores:              ctl.MinCores,
			MaxCores:              ctl.MaxCores,
			IntervalCycles:        ctl.IntervalCycles,
			CooldownCycles:        ctl.Config.CooldownCycles,
			Admission:             string(adm),
			Recluster:             *recluster,
			FinalActiveCores:      ctl.FinalActiveCores,
			PeakActiveCores:       ctl.PeakActiveCores,
			ScaleUps:              ctl.ScaleUps,
			ScaleDowns:            ctl.ScaleDowns,
			DrainVictims:          ctl.DrainVictims,
			Readmitted:            ctl.Readmitted,
			DrainShed:             ctl.DrainShed,
			Reclusters:            ctl.Reclusters,
			ModelDrift:            ctl.ModelDrift,
			ProvisionedCoreCycles: res.ProvisionedCoreCycles,
			StaticCoreCycles:      int64(ctl.MaxCores) * res.DurationCycles,
			Decisions:             ctl.Decisions,
		}
		if es.Decisions == nil {
			es.Decisions = []v10.ElasticDecision{}
		}
		doc.Elastic = es
		fmt.Fprintf(stderr, "elastic: %d→%d active (peak %d), %d up / %d down, drained %d (readmitted %d, shed %d), provisioned %d of %d core-cycles\n",
			es.MinCores, es.FinalActiveCores, es.PeakActiveCores, es.ScaleUps, es.ScaleDowns,
			es.DrainVictims, es.Readmitted, es.DrainShed, es.ProvisionedCoreCycles, es.StaticCoreCycles)
	}
	if schedule != nil && !schedule.Empty() {
		// A fault-free re-run of the same configuration anchors the resilience
		// block: goodput_retained says how much serving capacity the recovery
		// path preserved through the injected failures.
		baseOpt := opt
		baseOpt.Faults = nil
		baseOpt.Tracer = nil
		baseOpt.Counters = nil
		baseRes, baseErr := v10.ServeFleet(ws, scheme, baseOpt)
		if baseErr != nil && baseRes == nil {
			fmt.Fprintln(stderr, baseErr)
			return 1
		}
		hb := *heartbeat
		if hb == 0 {
			hb = 1_000_000 // the fleet dispatcher's default period
		}
		fsum := &faultSummary{
			Spec:            schedule.String(),
			Count:           len(schedule.Faults),
			FailedCores:     res.FailedCores,
			HeartbeatCycles: hb,
			Migrated:        res.Migrated,
			MigrationShed:   res.MigrationShed,
			MigrationCycles: res.MigrationCycles,
		}
		if fsum.FailedCores == nil {
			fsum.FailedCores = []int{}
		}
		fsum.BaselineGoodputHz = baseRes.GoodputHz
		if baseRes.GoodputHz > 0 {
			fsum.GoodputRetained = res.GoodputHz / baseRes.GoodputHz
		}
		doc.Faults = fsum
		fmt.Fprintf(stderr, "faults: %d injected, failed cores %v, migrated %d, shed %d, goodput retained %.1f%%\n",
			fsum.Count, fsum.FailedCores, fsum.Migrated, fsum.MigrationShed, 100*fsum.GoodputRetained)
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if runErr != nil {
		return 1
	}
	return 0
}

// buildTenants instantiates count tenants cycling through the model mix, each
// with its own jitter seed and a #N-suffixed name so per-tenant rows stay
// distinguishable.
func buildTenants(mix string, count, batch int, cfg v10.Config) ([]*v10.Workload, error) {
	names := strings.Split(mix, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	if count < 1 {
		return nil, fmt.Errorf("invalid tenant count %d", count)
	}
	var out []*v10.Workload
	for i := 0; i < count; i++ {
		w, err := v10.NewWorkload(names[i%len(names)], batch, uint64(i+1), cfg)
		if err != nil {
			return nil, err
		}
		t := *w
		t.Name = fmt.Sprintf("%s#%d", w.Name, i)
		out = append(out, &t)
	}
	return out, nil
}

func schemeByName(name string) (v10.Scheme, bool) {
	switch strings.ToLower(name) {
	case "pmt":
		return v10.SchemePMT, true
	case "v10-base", "base":
		return v10.SchemeV10Base, true
	case "v10-fair", "fair":
		return v10.SchemeV10Fair, true
	case "v10-full", "full":
		return v10.SchemeV10Full, true
	}
	return 0, false
}

// buildSummary flattens the fleet result into the stdout JSON document.
func buildSummary(res *v10.FleetResult, tenantCount int, rateHz float64) summary {
	s := summary{
		Scheme:         res.Scheme,
		Policy:         string(res.Policy),
		Cores:          len(res.Cores),
		TenantCount:    tenantCount,
		RateHz:         rateHz,
		DurationCycles: res.DurationCycles,
		TotalCycles:    res.TotalCycles,
		Offered:        res.Offered,
		Admitted:       res.Admitted,
		Shed:           res.Shed,
		Completed:      res.Completed,
		Good:           res.Good,
		GoodputHz:      res.GoodputHz,
		ShedRate:       res.ShedRate,
		Placement:      res.Placement,
		Tenants:        res.Tenants,
	}
	for _, cr := range res.Cores {
		cs := coreSummary{
			Core: cr.Core, Tenants: cr.Tenants, Admitted: cr.Admitted,
			SliceOf: cr.SliceOf, Slices: cr.Slices,
		}
		if cr.Run != nil {
			cs.TotalCycles = cr.Run.TotalCycles
			cs.AggregateUtil = cr.Run.AggregateUtil()
		}
		s.CoreResults = append(s.CoreResults, cs)
	}
	return s
}

// buildVNPUSummary folds per-core slice stats into one aggregate row per
// slice index. WindowCycles is read off the first materialized partition so
// the summary reports the applied default, not the raw flag value.
func buildVNPUSummary(res *v10.FleetResult, spec string, templates []v10.VNPUTemplate) *vnpuSummary {
	vs := &vnpuSummary{Spec: spec, Slices: make([]vnpuSliceAggregate, len(templates))}
	for i, t := range templates {
		vs.Slices[i] = vnpuSliceAggregate{Slice: i, Name: t.Name}
	}
	for _, cr := range res.Cores {
		for _, ss := range cr.Slices {
			if vs.WindowCycles == 0 {
				vs.WindowCycles = ss.WindowCycles
			}
			sa := &vs.Slices[ss.Slice]
			sa.Residents += ss.Residents
			sa.HBMBytes += ss.HBMBytes
			sa.ThrottleStalls += ss.ThrottleStalls
			sa.ThrottleCycles += ss.ThrottleCycles
			sa.CapHits += ss.CapHits
		}
	}
	return vs
}

// sliceTag renders a slice name as a digest suffix, empty for unnamed slices.
func sliceTag(name string) string {
	if name == "" {
		return ""
	}
	return " (" + name + ")"
}

// printDigest writes the human-readable fleet digest.
func printDigest(w io.Writer, res *v10.FleetResult) {
	fmt.Fprintf(w, "=== fleet: %s, %d cores, policy %s ===\n", res.Scheme, len(res.Cores), res.Policy)
	fmt.Fprintf(w, "offered %d  admitted %d  shed %d (%.1f%%)  completed %d  good %d  goodput %.1f req/s\n",
		res.Offered, res.Admitted, res.Shed, 100*res.ShedRate, res.Completed, res.Good, res.GoodputHz)
	for _, cr := range res.Cores {
		if cr.Run == nil {
			fmt.Fprintf(w, "  core %d: idle\n", cr.Core)
			continue
		}
		fmt.Fprintf(w, "  core %d: tenants %v  admitted %d  %d cycles  util %.1f%%\n",
			cr.Core, cr.Tenants, cr.Admitted, cr.Run.TotalCycles, 100*cr.Run.AggregateUtil())
	}
	for _, ts := range res.Tenants {
		fmt.Fprintf(w, "  %-18s home=%d offered=%-3d shed=%-3d done=%-3d good=%-3d avg=%.2fms p99=%.2fms\n",
			ts.Name, ts.Home, ts.Offered, ts.Shed, ts.Completed, ts.Good,
			ts.AvgLatencyCycles/700e3, ts.P99LatencyCycles/700e3)
	}
}
