package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	v10 "v10"
)

var update = flag.Bool("update", false, "rewrite the golden summary")

// quickArgs is a small deterministic fleet: two cores, three tenants, high
// open-loop rate over a short window.
func quickArgs(extra ...string) []string {
	return append([]string{
		"-cores", "2", "-tenants", "3", "-models", "BERT,NCF", "-batch", "2",
		"-rate", "2000", "-duration-cycles", "3000000",
		"-policy", "least-loaded", "-seed", "3",
	}, extra...)
}

func TestRunEmitsGoldenSummary(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(quickArgs(), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	golden := filepath.Join("testdata", "summary.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Fatalf("summary drifted from golden (run with -update if intended):\n%s", stdout.String())
	}
}

func TestRunSummarySchema(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(quickArgs(), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("stdout is not JSON: %v", err)
	}
	for _, key := range []string{
		"scheme", "policy", "cores", "tenant_count", "rate_hz", "duration_cycles",
		"total_cycles", "offered", "admitted", "shed", "completed", "good",
		"goodput_hz", "shed_rate", "placement", "core_results", "tenants",
	} {
		if _, ok := doc[key]; !ok {
			t.Errorf("summary is missing %q", key)
		}
	}
	tenants, ok := doc["tenants"].([]any)
	if !ok || len(tenants) != 3 {
		t.Fatalf("tenants = %v", doc["tenants"])
	}
	first, ok := tenants[0].(map[string]any)
	if !ok {
		t.Fatalf("tenant row = %v", tenants[0])
	}
	for _, key := range []string{
		"tenant", "name", "home_core", "offered", "admitted", "spilled", "shed",
		"completed", "good", "slo_cycles", "avg_latency_cycles",
		"p95_latency_cycles", "p99_latency_cycles", "goodput_hz", "shed_rate",
	} {
		if _, ok := first[key]; !ok {
			t.Errorf("tenant row is missing %q", key)
		}
	}
}

// faultArgs is the resilience fixture: three cores so the two survivors have
// headroom to absorb the failed core's migrated victims.
func faultArgs(extra ...string) []string {
	return append(quickArgs("-cores", "3", "-faults", "fail@0:1500000", "-heartbeat", "100000"), extra...)
}

func TestRunFaultsEmitsGoldenSummary(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(faultArgs(), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	golden := filepath.Join("testdata", "summary.faults.golden.json")
	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Fatalf("faulted summary drifted from golden (run with -update if intended):\n%s", stdout.String())
	}
}

func TestRunFaultsSummarySchema(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(faultArgs(), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	var doc struct {
		Faults map[string]any `json:"faults"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Faults == nil {
		t.Fatal("faulted run emitted no faults block")
	}
	for _, key := range []string{
		"spec", "count", "failed_cores", "heartbeat_cycles", "migrated",
		"migration_shed", "migration_cycles", "baseline_goodput_hz", "goodput_retained",
	} {
		if _, ok := doc.Faults[key]; !ok {
			t.Errorf("faults block is missing %q", key)
		}
	}
	if got := doc.Faults["failed_cores"]; len(got.([]any)) != 1 {
		t.Errorf("failed_cores = %v, want exactly the injected core", got)
	}
	if r, _ := doc.Faults["goodput_retained"].(float64); !(r > 0 && r <= 1) {
		t.Errorf("goodput_retained = %v, want in (0,1]", doc.Faults["goodput_retained"])
	}
	if stderrStr := stderr.String(); !strings.Contains(stderrStr, "goodput retained") {
		t.Error("resilience digest missing from stderr")
	}
}

func TestRunFaultFreeSummaryOmitsFaultsBlock(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(quickArgs(), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	if strings.Contains(stdout.String(), `"faults"`) {
		t.Fatal("fault-free summary contains a faults block")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown flag":    {"-definitely-not-a-flag"},
		"invalid policy":  quickArgs("-policy", "greedy"),
		"invalid scheme":  quickArgs("-scheme", "V11"),
		"unknown model":   quickArgs("-models", "NoSuchModel"),
		"zero tenants":    quickArgs("-tenants", "0"),
		"bad rate string": quickArgs("-rate", "fast"),

		"malformed fault spec":     quickArgs("-faults", "fail@"),
		"unknown fault kind":       quickArgs("-faults", "melt@0:1000"),
		"fault on absent core":     quickArgs("-faults", "fail@7:1000"),
		"faults and mttf together": quickArgs("-faults", "fail@0:1000", "-mttf", "1000000"),

		"unknown workload":    quickArgs("-workload", "fractal"),
		"trace without file":  quickArgs("-workload", "trace"),
		"missing trace file":  quickArgs("-trace-file", filepath.Join("testdata", "no-such.trace")),
		"unknown mix":         quickArgs("-mix", "everything"),
		"mix with workload":   quickArgs("-mix", "prefill-decode", "-workload", "mmpp"),
		"mix with trace file": quickArgs("-mix", "prefill-decode", "-trace-file", filepath.Join("testdata", "sample.trace")),
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", name, code, stderr.String())
		}
	}
}

func TestRunAdvisorPolicy(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := quickArgs("-policy", "advisor", "-tenants", "4")
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("advisor run exit %d\n%s", code, stderr.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["policy"] != "advisor" {
		t.Fatalf("policy = %v", doc["policy"])
	}
	if !strings.Contains(stderr.String(), "training collocation advisor") {
		t.Error("advisor training notice missing from stderr")
	}
}

func TestRunWritesTraceAndCounters(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "fleet.trace.json")
	counterPath := filepath.Join(dir, "fleet.counters.csv")
	var stdout, stderr bytes.Buffer
	args := quickArgs("-trace", tracePath, "-counters", counterPath)
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not Chrome trace-event JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	counters, err := os.ReadFile(counterPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(counters), "core 0") {
		t.Fatalf("counters lack per-core sections:\n%.200s", counters)
	}
}

// workloadArgs is the workload-engine fixture: the quick fleet driven by an
// MMPP flash-crowd stream instead of the legacy dispatcher Poisson draw.
func workloadArgs(extra ...string) []string {
	return append(quickArgs("-workload", "mmpp"), extra...)
}

func TestRunWorkloadEmitsGoldenSummary(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(workloadArgs(), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	golden := filepath.Join("testdata", "summary.workload.golden.json")
	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Fatalf("workload summary drifted from golden (run with -update if intended):\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "workload: mmpp (models mix)") {
		t.Error("workload digest missing from stderr")
	}
}

func TestRunWorkloadSummarySchema(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(workloadArgs(), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	var doc struct {
		Workload map[string]any `json:"workload"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Workload == nil {
		t.Fatal("workload run emitted no workload block")
	}
	for _, key := range []string{"process", "mix", "scheduled_arrivals"} {
		if _, ok := doc.Workload[key]; !ok {
			t.Errorf("workload block is missing %q", key)
		}
	}
	if n, _ := doc.Workload["scheduled_arrivals"].(float64); n <= 0 {
		t.Errorf("scheduled_arrivals = %v, want > 0", doc.Workload["scheduled_arrivals"])
	}
}

func TestRunLegacyPoissonOmitsWorkloadBlock(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(quickArgs(), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	if strings.Contains(stdout.String(), `"workload"`) {
		t.Fatal("legacy Poisson summary contains a workload block")
	}
}

func TestRunTraceFileReplay(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := quickArgs("-trace-file", filepath.Join("testdata", "sample.trace"))
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	var doc struct {
		Workload *workloadSummary `json:"workload"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Workload == nil || doc.Workload.Process != "trace" {
		t.Fatalf("workload block = %+v, want trace replay", doc.Workload)
	}
	if doc.Workload.TraceFile == "" || doc.Workload.ScheduledArrivals <= 0 {
		t.Fatalf("workload block = %+v", doc.Workload)
	}
}

func TestRunPrefillDecodeMix(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{
		"-cores", "2", "-tenants", "4", "-batch", "2",
		"-rate", "800", "-duration-cycles", "6000000",
		"-policy", "least-loaded", "-seed", "3", "-mix", "prefill-decode",
	}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	var doc struct {
		Workload *workloadSummary       `json:"workload"`
		Tenants  []v10.FleetTenantStats `json:"tenants"`
		Good     int                    `json:"good"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Workload == nil || doc.Workload.Process != "prefill-decode" {
		t.Fatalf("workload block = %+v", doc.Workload)
	}
	var prefill, decode int
	for _, ts := range doc.Tenants {
		switch {
		case strings.HasPrefix(ts.Name, "prefill-"):
			prefill++
		case strings.HasPrefix(ts.Name, "decode-"):
			decode++
		}
	}
	if prefill != 2 || decode != 2 {
		t.Fatalf("tenant classes: %d prefill, %d decode (want 2/2)", prefill, decode)
	}
	if doc.Good == 0 {
		t.Fatal("prefill/decode fleet served nothing")
	}
}

func TestRunWorkloadDeterministic(t *testing.T) {
	var a, b, stderr bytes.Buffer
	if code := run(workloadArgs(), &a, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	if code := run(workloadArgs(), &b, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different workload-mode summaries")
	}
}

// vnpuArgs is the spatial-partitioning fixture: the quick fleet with each
// core carved into a big and a small vNPU slice.
func vnpuArgs(extra ...string) []string {
	return append(quickArgs("-vnpu", "big=0.75:0.75:0.75;small=0.25"), extra...)
}

func TestRunVNPUEmitsGoldenSummary(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(vnpuArgs(), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	golden := filepath.Join("testdata", "summary.vnpu.golden.json")
	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Fatalf("vnpu summary drifted from golden (run with -update if intended):\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "vnpu slice 0 (big)") {
		t.Error("vnpu digest missing from stderr")
	}
}

func TestRunVNPUSummarySchema(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(vnpuArgs("-vnpu-window", "131072"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	var doc struct {
		VNPU        map[string]any `json:"vnpu"`
		CoreResults []struct {
			Tenants []int            `json:"tenants"`
			SliceOf []int            `json:"slice_of"`
			Slices  []map[string]any `json:"slices"`
		} `json:"core_results"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.VNPU == nil {
		t.Fatal("vnpu run emitted no vnpu block")
	}
	for _, key := range []string{"spec", "window_cycles", "slices"} {
		if _, ok := doc.VNPU[key]; !ok {
			t.Errorf("vnpu block is missing %q", key)
		}
	}
	if w, _ := doc.VNPU["window_cycles"].(float64); w != 131072 {
		t.Errorf("window_cycles = %v, want the -vnpu-window value", doc.VNPU["window_cycles"])
	}
	if rows, _ := doc.VNPU["slices"].([]any); len(rows) != 2 {
		t.Fatalf("vnpu slices = %v, want 2 aggregate rows", doc.VNPU["slices"])
	}
	for _, cr := range doc.CoreResults {
		if len(cr.Tenants) == 0 {
			continue
		}
		if len(cr.SliceOf) != len(cr.Tenants) {
			t.Errorf("core row slice_of = %v for tenants %v", cr.SliceOf, cr.Tenants)
		}
		if len(cr.Slices) != 2 {
			t.Fatalf("core row has %d slice stats, want 2", len(cr.Slices))
		}
		for _, ss := range cr.Slices {
			for _, key := range []string{
				"slice", "name", "compute_fraction", "vmem_bytes", "vmem_used_bytes",
				"window_cycles", "hbm_quota_bytes_per_window", "hbm_bytes",
				"peak_window_bytes", "throttle_stalls", "throttle_cycles",
				"cap_hits", "residents",
			} {
				if _, ok := ss[key]; !ok {
					t.Errorf("slice stats row is missing %q", key)
				}
			}
		}
	}
}

func TestRunVNPUFreeSummaryOmitsVNPUBlock(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(quickArgs(), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	for _, key := range []string{`"vnpu"`, `"slice_of"`, `"slices"`} {
		if strings.Contains(stdout.String(), key) {
			t.Fatalf("unsliced summary contains %s", key)
		}
	}
}

func TestRunRejectsBadVNPUFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"malformed spec":       quickArgs("-vnpu", "0.5:0.5"),
		"bad fraction":         quickArgs("-vnpu", "big=huge"),
		"zero-width slice":     quickArgs("-vnpu", "0:0.5:0.5;0.5"),
		"fraction above one":   quickArgs("-vnpu", "1.5"),
		"overcommitted vmem":   quickArgs("-vnpu", "0.5:0.8:0.5;0.5:0.8:0.5"),
		"overcommitted hbm":    quickArgs("-vnpu", "0.5:0.5:0.9;0.5:0.5:0.9"),
		"empty spec":           quickArgs("-vnpu", " ; "),
		"pmt with slices":      quickArgs("-vnpu", "0.5;0.5", "-scheme", "PMT"),
		"window without vnpu":  quickArgs("-vnpu-window", "4096"),
		"negative vnpu window": quickArgs("-vnpu", "0.5;0.5", "-vnpu-window", "-1"),
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", name, code, stderr.String())
		}
	}
}

// TestRunVNPUDeterministic pins slice placement and enforcement accounting:
// the same seed must reproduce the whole sliced summary byte for byte.
func TestRunVNPUDeterministic(t *testing.T) {
	var a, b, stderr bytes.Buffer
	if code := run(vnpuArgs(), &a, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	if code := run(vnpuArgs(), &b, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different vnpu-mode summaries")
	}
}

func TestBuildTenantsCyclesMix(t *testing.T) {
	cfg := v10.DefaultConfig()
	ws, err := buildTenants("BERT, NCF", 3, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("built %d tenants", len(ws))
	}
	if ws[0].Name != "BERT-b2#0" || ws[1].Name != "NCF-b2#1" || ws[2].Name != "BERT-b2#2" {
		t.Fatalf("names = %s / %s / %s", ws[0].Name, ws[1].Name, ws[2].Name)
	}
}

// writeTunedPolicy drops a policy file with the given knobs into a temp dir.
func writeTunedPolicy(t *testing.T, knobs v10.TunedKnobs) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "policy.json")
	p := &v10.TunedPolicy{Description: "test policy", Knobs: knobs}
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWithTunedPolicy(t *testing.T) {
	path := writeTunedPolicy(t, v10.BuiltinTunedKnobs())
	var tunedOut, defOut, stderr bytes.Buffer
	if code := run(quickArgs("-tuned", path), &tunedOut, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	stderr.Reset()
	if code := run(quickArgs(), &defOut, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	var tuned map[string]any
	if err := json.Unmarshal(tunedOut.Bytes(), &tuned); err != nil {
		t.Fatalf("tuned stdout is not JSON: %v", err)
	}
	// The tuned quantum reshapes the schedule: same fixture, different
	// timeline (the coarse counters may tie, the cycle accounting cannot).
	if bytes.Equal(tunedOut.Bytes(), defOut.Bytes()) {
		t.Fatalf("tuned policy left the run bit-identical to the defaults:\n%s", tunedOut.String())
	}
}

func TestRunWithFeedbackRounds(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(quickArgs("-feedback-rounds", "1"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("stdout is not JSON: %v", err)
	}
}

// TestRunRejectsBadTunedPolicy exercises the shared knob validation through
// the CLI: out-of-range values, non-finite values, unknown fields, and
// missing files all exit 2 before any simulation runs.
func TestRunRejectsBadTunedPolicy(t *testing.T) {
	outOfRange := v10.BuiltinTunedKnobs()
	outOfRange.QuantumCycles = 1 // below the legal floor
	tooHigh := v10.BuiltinTunedKnobs()
	tooHigh.DrainOccupancy = 64 // above the legal ceiling
	dir := t.TempDir()
	writeRaw := func(name, body string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// Save refuses illegal knobs, so out-of-range files are written raw.
	mustJSON := func(k v10.TunedKnobs) string {
		b, err := json.Marshal(map[string]any{"knobs": k})
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	for name, args := range map[string][]string{
		"missing policy file": quickArgs("-tuned", filepath.Join(dir, "no-such.json")),
		"malformed policy":    quickArgs("-tuned", writeRaw("garbage.json", "not json")),
		"unknown field":       quickArgs("-tuned", writeRaw("unknown.json", `{"knobs": {}, "bogus": 1}`)),
		"knob below minimum":  quickArgs("-tuned", writeRaw("low.json", mustJSON(outOfRange))),
		"knob above maximum":  quickArgs("-tuned", writeRaw("high.json", mustJSON(tooHigh))),
		"non-finite knob": quickArgs("-tuned", writeRaw("inf.json",
			`{"knobs": {"quantum_cycles": 32768, "preempt_margin": 1e999, "priority_exponent": 0,
			  "queue_limit": 8, "collocation_threshold": 1.3, "migration_backoff_cycles": 250000,
			  "cooldown_intervals": 2, "slowdown_limit": 2.5, "drain_occupancy": 0.25}}`)),
		"negative feedback rounds": quickArgs("-feedback-rounds", "-1"),
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", name, code, stderr.String())
		}
	}
}
