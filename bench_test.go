package v10

// Benchmark harness: one testing.B benchmark per paper table and figure —
// each iteration regenerates that artifact from the simulator — plus
// ablation benches for the design choices DESIGN.md calls out and
// micro-benchmarks of the core mechanisms.
//
//	go test -bench=. -benchmem                 # everything
//	go test -bench=BenchmarkFig18              # one figure
//	go test -bench=BenchmarkAblation -benchmem # ablations only

import (
	"testing"

	"v10/internal/baseline"
	"v10/internal/bf16"
	"v10/internal/collocate"
	"v10/internal/dma"
	"v10/internal/experiments"
	"v10/internal/isa"
	"v10/internal/mathx"
	"v10/internal/models"
	"v10/internal/sched"
	"v10/internal/sim"
	"v10/internal/systolic"
	"v10/internal/trace"
)

// benchContext builds a fresh reduced-scale experiment context per iteration
// so memoization does not turn later iterations into no-ops.
func benchContext() *experiments.Context {
	c := experiments.NewContext()
	c.Requests = 3
	c.ProfileRequests = 2
	return c
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	g, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, err := g.Run(benchContext())
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- One benchmark per paper artifact ---

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16a(b *testing.B) { benchExperiment(b, "fig16a") }
func BenchmarkFig16b(b *testing.B) { benchExperiment(b, "fig16b") }
func BenchmarkFig16c(b *testing.B) { benchExperiment(b, "fig16c") }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { benchExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)  { benchExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B)  { benchExperiment(b, "fig21") }
func BenchmarkFig22a(b *testing.B) { benchExperiment(b, "fig22a") }
func BenchmarkFig22b(b *testing.B) { benchExperiment(b, "fig22b") }
func BenchmarkFig23(b *testing.B)  { benchExperiment(b, "fig23") }
func BenchmarkFig24(b *testing.B)  { benchExperiment(b, "fig24") }
func BenchmarkFig25(b *testing.B)  { benchExperiment(b, "fig25") }

// --- Ablations (design choices from DESIGN.md) ---

func benchPair(b *testing.B) []*Workload {
	b.Helper()
	cfg := DefaultConfig()
	bert, err := NewWorkload("BERT", 32, 1, cfg)
	if err != nil {
		b.Fatal(err)
	}
	dlrm, err := NewWorkload("DLRM", 32, 2, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return []*Workload{bert, dlrm}
}

// BenchmarkAblationPreemptMargin sweeps the arp imbalance required before
// V10-Full preempts, reporting the achieved STP as a custom metric.
func BenchmarkAblationPreemptMargin(b *testing.B) {
	for _, margin := range []float64{1.0, 1.25, 1.5, 2.0} {
		b.Run(marginName(margin), func(b *testing.B) {
			pair := benchPair(b)
			rates, err := baseline.SingleTenantRates(pair, DefaultConfig(), 3)
			if err != nil {
				b.Fatal(err)
			}
			var stp float64
			for i := 0; i < b.N; i++ {
				opts := sched.FullOptions()
				opts.RequestsPerWorkload = 3
				opts.PreemptMargin = margin
				res, err := sched.Run(benchPair(b), opts)
				if err != nil {
					b.Fatal(err)
				}
				stp = res.STP(rates)
			}
			b.ReportMetric(stp, "STP")
		})
	}
}

func marginName(m float64) string {
	switch m {
	case 1.0:
		return "margin1.0"
	case 1.25:
		return "margin1.25"
	case 1.5:
		return "margin1.5"
	default:
		return "margin2.0"
	}
}

// BenchmarkAblationFluidHBM compares the fluid bandwidth-sharing model
// against unconstrained bandwidth (no HBM contention).
func BenchmarkAblationFluidHBM(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "fluid"
		if disable {
			name = "unconstrained"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := sched.FullOptions()
				opts.RequestsPerWorkload = 3
				opts.DisableFluidHBM = disable
				if _, err := sched.Run(benchPair(b), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDispatchPolicy compares RR against Algorithm 1 dispatch.
func BenchmarkAblationDispatchPolicy(b *testing.B) {
	for _, policy := range []sched.Policy{sched.RoundRobin, sched.Priority} {
		b.Run(policy.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := sched.Options{Policy: policy, RequestsPerWorkload: 3}
				if _, err := sched.Run(benchPair(b), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTimeSlice is the Fig. 23 sweep as a bench target.
func BenchmarkAblationTimeSlice(b *testing.B) {
	for _, slice := range []int64{512, 32768, 1048576} {
		b.Run(sliceName(slice), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := sched.FullOptions()
				opts.Config = DefaultConfig()
				opts.Config.TimeSlice = slice
				opts.RequestsPerWorkload = 3
				if _, err := sched.Run(benchPair(b), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sliceName(s int64) string {
	switch s {
	case 512:
		return "slice512"
	case 32768:
		return "slice32768"
	default:
		return "slice1048576"
	}
}

// benchZoo builds the advisor-training population: every model at batch 32.
func benchZoo(b *testing.B) ([]*trace.Workload, []collocate.Features) {
	b.Helper()
	cfg := DefaultConfig()
	var ws []*trace.Workload
	var fs []collocate.Features
	for i, s := range models.Specs() {
		if s.OOM(32, cfg.HBMBytes) {
			continue
		}
		w := s.Workload(32, uint64(i+1), cfg)
		ws = append(ws, w)
		fs = append(fs, collocate.ExtractFeatures(w, cfg, 2))
	}
	return ws, fs
}

// benchTrain measures advisor training end to end with the given worker
// count. A fresh simulation oracle per iteration keeps the pairwise
// profiling (the dominant cost) from being served out of the memo cache.
func benchTrain(b *testing.B, workers int) {
	ws, fs := benchZoo(b)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perf := collocate.SimPairPerf(cfg, 2)
		_, err := collocate.Train(ws, fs, perf,
			collocate.TrainConfig{K: 5, PairSamples: 6, Seed: 1, Parallel: workers})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrain compares serial against pooled pairwise profiling. The
// trained models are bit-identical at any worker count (asserted by
// TestTrainParallelBitIdentical in internal/collocate); on a multi-core
// machine the parallel variant should approach a GOMAXPROCS-fold speedup
// since the profiling simulations are independent and CPU-bound.
func BenchmarkTrain(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchTrain(b, 1) })
	b.Run("parallel", func(b *testing.B) { benchTrain(b, 0) })
}

// --- Micro-benchmarks of the core mechanisms ---

// BenchmarkSchedulerDispatch measures raw operator scheduling throughput:
// two synthetic workloads with very short alternating operators.
func BenchmarkSchedulerDispatch(b *testing.B) {
	mk := func() []*trace.Workload {
		gen := func(int) *trace.Graph {
			g := &trace.Graph{}
			for i := 0; i < 64; i++ {
				kind := trace.KindSA
				if i%2 == 1 {
					kind = trace.KindVU
				}
				op := trace.Op{ID: i, Kind: kind, Compute: 100}
				if i > 0 {
					op.Deps = []int{i - 1}
				}
				g.Ops = append(g.Ops, op)
			}
			return g
		}
		return []*trace.Workload{
			trace.NewWorkload("a", "a", 1, gen),
			trace.NewWorkload("b", "b", 1, gen),
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Run(mk(), sched.Options{RequestsPerWorkload: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFluidPool measures the bandwidth water-filling engine.
func BenchmarkFluidPool(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e sim.Engine
		pool := sim.NewFluidPool(&e, 471)
		for t := 0; t < 64; t++ {
			work := float64(100 + t*13%500)
			demand := float64(t * 17 % 600)
			e.Schedule(int64(t*50), func(sim.Cycle) { pool.Start(work, demand, nil) })
		}
		for e.Step() {
		}
	}
}

// BenchmarkKMeans measures the clustering stage on a Fig. 15-sized dataset.
func BenchmarkKMeans(b *testing.B) {
	rng := mathx.NewRNG(1)
	data := mathx.NewMatrix(33, 8)
	for i := range data.Data {
		data.Data[i] = rng.Float64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mathx.KMeans(data, 5, 50, mathx.NewRNG(uint64(i)))
	}
}

// BenchmarkPMTRun measures the baseline simulator for comparison with
// BenchmarkSchedulerDispatch.
func BenchmarkPMTRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.RunPMT(benchPair(b), baseline.PMTOptions{RequestsPerWorkload: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDisc4(b *testing.B) { benchExperiment(b, "disc4") }
func BenchmarkExt1(b *testing.B)  { benchExperiment(b, "ext1") }
func BenchmarkCalib(b *testing.B) { benchExperiment(b, "calib") }

// BenchmarkSystolicStream measures the functional PE-grid dataflow
// (16×16 array, 64 input rows).
func BenchmarkSystolicStream(b *testing.B) {
	rng := mathx.NewRNG(1)
	w := make([][]float32, 16)
	rows := make([][]float32, 64)
	for i := range w {
		w[i] = make([]float32, 16)
		for j := range w[i] {
			w[i][j] = float32(rng.Uniform(-1, 1))
		}
	}
	for i := range rows {
		rows[i] = make([]float32, 16)
		for j := range rows[i] {
			rows[i][j] = float32(rng.Uniform(-1, 1))
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := systolic.New(16)
		if err := a.LoadWeights(w); err != nil {
			b.Fatal(err)
		}
		if _, err := a.Stream(rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkISALayer measures the instruction interpreter running a compiled
// FC+ReLU layer.
func BenchmarkISALayer(b *testing.B) {
	rng := mathx.NewRNG(2)
	layout := isa.Layout{Dim: 8, Rows: 32, In: 0, Weights: 100000, Bias: 200000, Out: 300000}
	in := make([][]float32, layout.Rows)
	for i := range in {
		in[i] = make([]float32, layout.Dim)
		for j := range in[i] {
			in[i][j] = float32(rng.Uniform(-1, 1))
		}
	}
	w := in[:layout.Dim]
	prog, err := isa.BuildFCReLU(layout)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core := isa.NewCore(systolic.New(layout.Dim), isa.NewVMem(1<<20))
		if err := isa.PackRows(core.VMem, layout.In, in); err != nil {
			b.Fatal(err)
		}
		if err := isa.PackRows(core.VMem, layout.Weights, w); err != nil {
			b.Fatal(err)
		}
		if err := core.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBF16Quantize measures the bfloat16 conversion kernel.
func BenchmarkBF16Quantize(b *testing.B) {
	xs := make([]float32, 4096)
	rng := mathx.NewRNG(3)
	for i := range xs {
		xs[i] = float32(rng.Uniform(-100, 100))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bf16.QuantizeSlice(xs)
	}
}

// BenchmarkDMADoubleBuffer measures the §2.1 overlap pipeline.
func BenchmarkDMADoubleBuffer(b *testing.B) {
	chunks := make([]dma.Chunk, 64)
	for i := range chunks {
		chunks[i] = dma.Chunk{Bytes: 4096, ComputeCycles: 40}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dma.DoubleBuffer(471, chunks); err != nil {
			b.Fatal(err)
		}
	}
}
