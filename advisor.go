package v10

import (
	"fmt"

	"v10/internal/collocate"
)

// Advisor is the clustering-based collocation advisor (§3.4): it clusters
// workloads by resource signature (PCA + K-Means) and predicts whether a
// pair will benefit from sharing a core, using offline-profiled
// inter-cluster collocation performance.
type Advisor struct {
	cfg       Config
	model     *collocate.Model
	requests  int
	benefitAt float64
}

// AdvisorOptions tune training.
type AdvisorOptions struct {
	Config Config
	// Clusters is K in K-Means (paper: 5).
	Clusters int
	// Threshold is the benefit cutoff on V10-Full/PMT throughput (paper: 1.3).
	Threshold float64
	// ProfileRequests per simulation during offline pairwise profiling.
	ProfileRequests int
	// PairSamples bounds pairs profiled per cluster pair (0 = all).
	PairSamples int
	Seed        uint64
	// Parallel bounds the worker goroutines used for the O(n²) pairwise
	// profiling simulations (0 = GOMAXPROCS, 1 = serial). The trained model
	// is bit-identical at any worker count.
	Parallel int
}

// TrainAdvisor profiles the training workloads and builds the cluster
// database. Training cost is dominated by the pairwise collocation
// simulations; results are memoized within the call, and the simulations fan
// out across opt.Parallel workers (GOMAXPROCS by default) with bit-identical
// results to a serial run.
func TrainAdvisor(training []*Workload, opt AdvisorOptions) (*Advisor, error) {
	cfg := opt.Config
	if cfg.SADim == 0 {
		cfg = DefaultConfig()
	}
	requests := opt.ProfileRequests
	if requests <= 0 {
		requests = 3
	}
	feats := make([]collocate.Features, len(training))
	for i, w := range training {
		feats[i] = collocate.ExtractFeatures(w, cfg, requests)
	}
	perf := collocate.SimPairPerf(cfg, requests)
	model, err := collocate.Train(training, feats, perf, collocate.TrainConfig{
		K:           opt.Clusters,
		Threshold:   opt.Threshold,
		PairSamples: opt.PairSamples,
		Seed:        opt.Seed,
		Parallel:    opt.Parallel,
	})
	if err != nil {
		return nil, fmt.Errorf("v10: training advisor: %w", err)
	}
	threshold := opt.Threshold
	if threshold <= 0 {
		threshold = 1.3
	}
	return &Advisor{cfg: cfg, model: model, requests: requests, benefitAt: threshold}, nil
}

// Clusters returns the number of clusters in the trained model.
func (a *Advisor) Clusters() int { return a.model.K() }

// Cluster assigns a workload to its cluster.
func (a *Advisor) Cluster(w *Workload) int {
	return a.model.PredictCluster(collocate.ExtractFeatures(w, a.cfg, a.requests))
}

// PredictGain estimates the pair's collocation performance: the predicted
// V10-Full aggregated throughput relative to PMT time sharing.
func (a *Advisor) PredictGain(x, y *Workload) float64 {
	fx := collocate.ExtractFeatures(x, a.cfg, a.requests)
	fy := collocate.ExtractFeatures(y, a.cfg, a.requests)
	return a.model.PredictPerf(fx, fy)
}

// ShouldCollocate reports whether the pair clears the benefit threshold and
// should be dispatched to the same NPU core.
func (a *Advisor) ShouldCollocate(x, y *Workload) bool {
	fx := collocate.ExtractFeatures(x, a.cfg, a.requests)
	fy := collocate.ExtractFeatures(y, a.cfg, a.requests)
	return a.model.ShouldCollocate(fx, fy)
}

// PlanPairs greedily pairs the given workloads for collocation: the
// highest-predicted-gain compatible pairs share cores; leftovers run alone.
// It returns the pair list and the indices of workloads left unpaired —
// the §3.5 "put it all together" dispatch step.
func (a *Advisor) PlanPairs(ws []*Workload) (pairs [][2]int, alone []int) {
	type cand struct {
		i, j int
		gain float64
	}
	var cands []cand
	feats := make([]collocate.Features, len(ws))
	for i, w := range ws {
		feats[i] = collocate.ExtractFeatures(w, a.cfg, a.requests)
	}
	for i := 0; i < len(ws); i++ {
		for j := i + 1; j < len(ws); j++ {
			gain := a.model.PredictPerf(feats[i], feats[j])
			if gain >= a.threshold() {
				cands = append(cands, cand{i, j, gain})
			}
		}
	}
	// Sort by descending gain (stable on index for determinism).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && better(cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	used := make([]bool, len(ws))
	for _, c := range cands {
		if used[c.i] || used[c.j] {
			continue
		}
		used[c.i], used[c.j] = true, true
		pairs = append(pairs, [2]int{c.i, c.j})
	}
	for i := range ws {
		if !used[i] {
			alone = append(alone, i)
		}
	}
	return pairs, alone
}

func better(a, b struct {
	i, j int
	gain float64
}) bool {
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	if a.i != b.i {
		return a.i < b.i
	}
	return a.j < b.j
}

func (a *Advisor) threshold() float64 { return a.benefitAt }
