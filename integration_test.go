package v10

// Integration and stress tests exercising the whole stack end to end:
// long mixed simulations with invariant checks, cross-scheme consistency,
// and the full advisor → placement → cluster pipeline.

import (
	"math"
	"testing"
)

// TestLongMixedRunInvariants runs a long six-tenant simulation on a scaled
// core and checks global invariants that any correct schedule must satisfy.
func TestLongMixedRunInvariants(t *testing.T) {
	cfg := DefaultConfig().WithFUs(2)
	names := []string{"BERT", "DLRM", "NCF", "ResNet", "MNIST", "RetinaNet"}
	var ws []*Workload
	for i, n := range names {
		w, err := NewWorkload(n, 32, uint64(i+1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	res, err := Collocate(ws, SchemeV10Full, Options{Config: cfg, Requests: 6})
	if err != nil {
		t.Fatal(err)
	}

	total := float64(res.TotalCycles)
	if total <= 0 {
		t.Fatal("no time simulated")
	}
	// FU capacity: busy unit-cycles can never exceed capacity.
	if res.SAUtil() > 1+1e-9 || res.VUUtil() > 1+1e-9 {
		t.Fatalf("utilization exceeds capacity: SA=%v VU=%v", res.SAUtil(), res.VUUtil())
	}
	// Wall-clock partition: overlap categories plus idle account for all time.
	both, saOnly, vuOnly := res.OverlapBreakdown()
	if both+saOnly+vuOnly > 1+1e-9 {
		t.Fatalf("overlap fractions exceed 1: %v", both+saOnly+vuOnly)
	}
	for _, w := range res.Workloads {
		if w.Requests < 6 {
			t.Fatalf("%s finished only %d requests", w.Name, w.Requests)
		}
		if len(w.LatencyCycles) != w.Requests {
			t.Fatalf("%s latency samples (%d) != requests (%d)",
				w.Name, len(w.LatencyCycles), w.Requests)
		}
		for _, lat := range w.LatencyCycles {
			if lat <= 0 || lat > total {
				t.Fatalf("%s latency %v outside (0, total]", w.Name, lat)
			}
		}
		// A workload's busy time can't exceed the whole run on every FU.
		if w.ActiveCycles > res.TotalCycles*int64(cfg.NumSA+cfg.NumVU) {
			t.Fatalf("%s active cycles exceed capacity", w.Name)
		}
		if w.ProgressOpCycles <= 0 || w.FLOPs <= 0 || w.HBMBytes <= 0 {
			t.Fatalf("%s missing accounting: %+v", w.Name, w)
		}
	}
	// HBM: traffic can't exceed the interface's capacity over the run.
	if res.HBMUtil() > 1+1e-6 {
		t.Fatalf("HBM utilization %v above capacity", res.HBMUtil())
	}
}

// TestSchemeConsistency checks cross-scheme invariants on one pair: Fair
// and Base differ only in dispatch order (no preemptions), Full preempts,
// PMT never overlaps.
func TestSchemeConsistency(t *testing.T) {
	cfg := DefaultConfig()
	mk := func() []*Workload {
		a, err := NewWorkload("BERT", 32, 1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewWorkload("DLRM", 32, 2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return []*Workload{a, b}
	}
	results, rates, err := CompareSchemes(mk(), Options{Requests: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"PMT", "V10-Base", "V10-Fair"} {
		for _, w := range results[name].Workloads {
			if name != "PMT" && w.Preemptions != 0 {
				t.Fatalf("%s must not preempt operators", name)
			}
		}
	}
	pmtBoth, _, _ := results["PMT"].OverlapBreakdown()
	if pmtBoth > 0.02 {
		t.Fatalf("PMT overlap = %v", pmtBoth)
	}
	fullBoth, _, _ := results["V10-Full"].OverlapBreakdown()
	if fullBoth <= pmtBoth {
		t.Fatal("V10-Full must overlap more than PMT")
	}
	// STP sanity: every scheme within (0, 2] for a pair.
	for name, r := range results {
		stp := r.STP(rates)
		if stp <= 0 || stp > 2.0001 {
			t.Fatalf("%s STP = %v outside (0, 2]", name, stp)
		}
	}
}

// TestAdvisorClusterPipeline drives §3.4+§3.5 end to end: train, group with
// a per-core cap, simulate the whole cluster, and verify the advisor's
// placement beats blind pairing.
func TestAdvisorClusterPipeline(t *testing.T) {
	cfg := DefaultConfig()
	names := []string{"BERT", "Transformer", "DLRM", "NCF", "ResNet", "MNIST"}
	var ws []*Workload
	for i, n := range names {
		w, err := NewWorkload(n, 32, uint64(i+10), cfg)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	adv, err := TrainAdvisor(ws, AdvisorOptions{Clusters: 3, ProfileRequests: 2, PairSamples: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	planned := adv.PlanPlacement(ws)
	if err := planned.Validate(len(ws)); err != nil {
		t.Fatal(err)
	}
	plan, err := SimulateCluster(ws, planned, ClusterOptions{Requests: 4})
	if err != nil {
		t.Fatal(err)
	}
	blind, err := SimulateCluster(ws, NaivePlacement(len(ws)), ClusterOptions{Requests: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The advisor should never be materially worse than blind pairing.
	if plan.TotalSTP < blind.TotalSTP*0.95 {
		t.Fatalf("advisor STP %v well below blind %v", plan.TotalSTP, blind.TotalSTP)
	}
	if plan.WorstTenant <= 0 {
		t.Fatal("a tenant starved under the advisor plan")
	}
}

// TestDeterminismAcrossStack re-runs an identical scenario end to end and
// requires bit-identical aggregates.
func TestDeterminismAcrossStack(t *testing.T) {
	run := func() (float64, float64) {
		cfg := DefaultConfig()
		a, err := NewWorkload("RNRS", 32, 3, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewWorkload("SMask", 8, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Collocate([]*Workload{a, b}, SchemeV10Full, Options{Requests: 4, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res.AggregateUtil(), res.Workloads[0].AvgLatency()
	}
	u1, l1 := run()
	u2, l2 := run()
	if u1 != u2 || l1 != l2 {
		t.Fatalf("stack nondeterministic: (%v,%v) vs (%v,%v)", u1, l1, u2, l2)
	}
	if math.IsNaN(u1) || u1 <= 0 {
		t.Fatalf("degenerate utilization %v", u1)
	}
}
