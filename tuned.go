package v10

import "v10/internal/tune"

// Policy tuning (see internal/tune): cmd/v10tune searches the serving
// stack's cross-layer knob space — scheduler quantum and preemption margin,
// dispatcher queue bound and priority bias, collocation threshold, migration
// backoff, and the elastic control plane's cooldown/drain parameters — with
// a seeded evolutionary search over the deterministic simulator, and commits
// the winner under results/tuned_policy.json. The types below let serving
// callers load and apply such a policy.

// TunedKnobs is the typed cross-layer policy vector the tuner optimizes.
// Apply it to a fleet run through FleetOptions.Tuned.
type TunedKnobs = tune.Knobs

// TunedPolicy is the on-disk form of a tuned knob vector: the knobs plus the
// provenance (seed, budget, objectives) of the search that produced them.
type TunedPolicy = tune.Policy

// LoadTunedPolicy reads and validates a tuned-policy JSON file (as written
// by v10tune -out). Unknown fields, malformed JSON, and out-of-range or
// non-finite knob values are all rejected with the tuner's shared knob-range
// errors — a policy that loads is safe to serve with.
func LoadTunedPolicy(path string) (*TunedPolicy, error) { return tune.LoadPolicy(path) }

// DefaultTunedKnobs returns the serving stack's built-in operating point —
// the baseline every tuned policy is measured against.
func DefaultTunedKnobs() TunedKnobs { return tune.DefaultKnobs() }

// BuiltinTunedKnobs returns the committed v10tune search winner (the knobs
// of results/tuned_policy.json, compiled in): versus the defaults it holds
// higher fleet goodput at no-worse p99 on the tuner's regression-gate
// scenarios.
func BuiltinTunedKnobs() TunedKnobs { return tune.Tuned() }
