package v10_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	v10 "v10"
)

// TestCollocateTracing drives the observability layer through the public API:
// a ring sink on a V10-Full run must see the preemptions the result counts.
func TestCollocateTracing(t *testing.T) {
	cfg := v10.DefaultConfig()
	bert, err := v10.NewWorkload("BERT", 32, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ncf, err := v10.NewWorkload("NCF", 32, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ring := v10.NewTraceRing(1 << 20)
	res, err := v10.Collocate([]*v10.Workload{bert, ncf}, v10.SchemeV10Full,
		v10.Options{Config: cfg, Requests: 3, Tracer: ring})
	if err != nil {
		t.Fatal(err)
	}
	if ring.Len() == 0 {
		t.Fatal("tracer saw no events")
	}
	var preempts int64
	for _, w := range res.Workloads {
		preempts += w.Preemptions
	}
	if got := int64(ring.Count(v10.EvPreempt)); got != preempts {
		t.Fatalf("traced preempts %d != result %d", got, preempts)
	}
}

// TestCompareSchemesSections checks that one shared writer splits a scheme
// sweep into per-scheme trace sections and counter rows.
func TestCompareSchemesSections(t *testing.T) {
	cfg := v10.DefaultConfig()
	a, err := v10.NewWorkload("MNST", 32, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := v10.NewWorkload("NCF", 32, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tracer := v10.NewChromeTrace(cfg)
	counters := v10.NewCounterLog()
	results, rates, err := v10.CompareSchemes([]*v10.Workload{a, b},
		v10.Options{Config: cfg, Requests: 2, Tracer: tracer, Counters: counters})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 || len(rates) != 2 {
		t.Fatalf("results/rates = %d/%d", len(results), len(rates))
	}

	var buf bytes.Buffer
	if _, err := tracer.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	sections := map[string]bool{}
	for _, e := range f.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			name, _ := e.Args["name"].(string)
			sections[name] = true
		}
	}
	// PMT runs untraced but still gets its (empty) section; the V10 schemes
	// contribute events.
	for _, want := range []string{"PMT", "V10-Base", "V10-Fair", "V10-Full"} {
		if !sections[want] {
			t.Fatalf("missing trace section %q (got %v)", want, sections)
		}
	}

	schemes := map[string]bool{}
	for _, row := range counters.Rows {
		schemes[row.Scheme] = true
	}
	for _, want := range []string{"V10-Base", "V10-Fair", "V10-Full"} {
		if !schemes[want] {
			t.Fatalf("missing counter rows for %q (got %v)", want, schemes)
		}
	}
}

func TestCollocateInvalidPriority(t *testing.T) {
	cfg := v10.DefaultConfig()
	w, err := v10.NewWorkload("NCF", 32, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Priority = -2
	_, err = v10.Collocate([]*v10.Workload{w}, v10.SchemeV10Full, v10.Options{Config: cfg, Requests: 1})
	if err == nil || !strings.Contains(err.Error(), "invalid priority") {
		t.Fatalf("err = %v, want invalid-priority rejection", err)
	}
}

func TestErrMaxCyclesExported(t *testing.T) {
	if v10.ErrMaxCycles == nil {
		t.Fatal("ErrMaxCycles not exported")
	}
	if errors.Is(nil, v10.ErrMaxCycles) {
		t.Fatal("nil matches ErrMaxCycles")
	}
}
